#include "exec/operators_project.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/coding.h"

namespace ghostdb::exec {

using catalog::ColumnId;
using catalog::RowId;
using catalog::TableId;
using catalog::Value;
using sql::BoundQuery;

namespace {

VisTable* VisTableOf(PipelineState& state, TableId t) {
  for (auto& vt : state.vis_tables) {
    if (vt.table == t) return &vt;
  }
  return nullptr;
}

}  // namespace

// ---------------------------------------------------------------------------
// ProjectOp: the section 4 Project algorithm (and its NoBF ablation)
// ---------------------------------------------------------------------------

Status ProjectOp::Open() {
  GHOSTDB_RETURN_NOT_OK(Operator::Open());
  auto& ram = ctx_->ram();
  auto& clock = ctx_->clock();
  auto scope = clock.Enter("project");
  PipelineState& state = ctx_->pipeline;
  const BoundQuery& query = *ctx_->query;
  const SjState& sj = state.sj;
  TableId anchor = query.anchor;

  // Which non-anchor tables need the MJoin treatment: projected value
  // columns, or exactness recovery for approximate QEP_SJ filtering.
  for (TableId t : query.tables) {
    if (t == anchor) continue;
    MJoinTable mt;
    mt.table = t;
    mt.vis_cols = query.ProjectedVisibleColumns(*ctx_->schema, t);
    mt.hid_cols = query.ProjectedHiddenColumns(*ctx_->schema, t);
    VisTable* vt = VisTableOf(state, t);
    bool exact_needed = vt != nullptr && vt->need_exact_at_projection;
    if (mt.vis_cols.empty() && mt.hid_cols.empty() && !exact_needed) {
      continue;
    }
    for (ColumnId c : mt.vis_cols) {
      mt.vis_width += ctx_->schema->table(t).columns[c].width;
    }
    for (ColumnId c : mt.hid_cols) {
      mt.hid_width += ctx_->schema->table(t).columns[c].width;
    }
    mt.out_width = 4 + mt.vis_width + mt.hid_width;
    mt.has_vis_side = vt != nullptr || !mt.vis_cols.empty();
    mjoin_.push_back(std::move(mt));
  }

  // Step 1: vertical partitioning — one pass over F' writes each needed
  // Ti.id column run (root-order, duplicates preserved).
  if (!mjoin_.empty()) {
    GHOSTDB_ASSIGN_OR_RETURN(
        device::RamGuard bufs,
        device::RamGuard::Acquire(&ram, static_cast<uint32_t>(mjoin_.size()) + 1,
                    "project-partition"));
    RowRunReader reader(&ctx_->flash(), sj.fprime, sj.row_width,
                        bufs.data());
    GHOSTDB_RETURN_NOT_OK(reader.Prime());
    std::vector<std::unique_ptr<storage::RunWriter>> writers;
    std::vector<uint32_t> offsets;
    for (size_t i = 0; i < mjoin_.size(); ++i) {
      writers.push_back(std::make_unique<storage::RunWriter>(
          &ctx_->flash(), ctx_->allocator,
          bufs.data() + (i + 1) * ram.buffer_size(), "project-col"));
      auto off = sj.ColumnOffset(mjoin_[i].table, anchor);
      if (!off.has_value()) {
        return Status::Internal("projected table missing from F'");
      }
      offsets.push_back(*off);
    }
    while (reader.valid()) {
      for (size_t i = 0; i < mjoin_.size(); ++i) {
        GHOSTDB_RETURN_NOT_OK(
            writers[i]->Append(reader.row() + offsets[i], 4));
      }
      GHOSTDB_RETURN_NOT_OK(reader.Advance());
    }
    for (size_t i = 0; i < mjoin_.size(); ++i) {
      GHOSTDB_ASSIGN_OR_RETURN(mjoin_[i].column_run, writers[i]->Finish());
    }
  }

  // Step 2+3: per table, Bloom over the column, probe Vis, MJoin passes.
  for (auto& mt : mjoin_) {
    const core::TableImage& image = ctx_->store->tables[mt.table];

    // Vis values stream (charged): rows passing Ti's visible predicates.
    if (mt.has_vis_side) {
      GHOSTDB_ASSIGN_OR_RETURN(
          mt.payload,
          ctx_->untrusted->ServeProjection(query, mt.table, mt.vis_cols,
                                           ctx_->vis_prefetch));
    }

    // Bloom over QEPSJ.Ti.id, sized to the whole remaining RAM (paper
    // section 5), minus what MJoin needs to stream.
    std::optional<BloomFilter> bloom;
    if (use_bf_) {
      uint32_t max_buffers =
          ram.free_buffers() > 8 ? ram.free_buffers() - 8 : 1;
      GHOSTDB_ASSIGN_OR_RETURN(
          BloomFilter bf,
          BloomFilter::Create(&ram, sj.rows, max_buffers,
                              ctx_->config->bloom_target_bpe));
      GHOSTDB_ASSIGN_OR_RETURN(device::RamGuard col_buf,
                               device::RamGuard::AcquireOne(&ram, "project-bf-scan"));
      storage::IdRunReader ids(&ctx_->flash(), mt.column_run,
                               col_buf.data());
      GHOSTDB_RETURN_NOT_OK(ids.Prime());
      while (ids.valid()) {
        bf.Insert(ids.head());
        GHOSTDB_RETURN_NOT_OK(ids.Advance());
      }
      bloom.emplace(std::move(bf));
    }

    // MJoin: stream [σVH ids (+vis values)] ⋈ TiH into RAM chunks; per
    // chunk, scan QEPSJ.Ti.id and emit <pos, vlist, hlist>.
    uint32_t reserve = 3;  // column reader + output writer + TiH reader
    if (ram.free_buffers() <= reserve) {
      return Status::ResourceExhausted("mjoin needs more buffers");
    }
    GHOSTDB_ASSIGN_OR_RETURN(
        device::RamGuard chunk_buf,
        device::RamGuard::Acquire(&ram, ram.free_buffers() - reserve, "mjoin-chunk"));
    GHOSTDB_ASSIGN_OR_RETURN(device::RamGuard io_bufs,
                             device::RamGuard::Acquire(&ram, 3, "mjoin-io"));
    uint32_t entry_width = 4 + mt.vis_width + mt.hid_width;
    size_t chunk_capacity =
        std::max<size_t>(1, chunk_buf.size() / entry_width);

    std::optional<storage::FixedTableReader> hid_reader;
    std::vector<uint8_t> hid_row;
    if (!mt.hid_cols.empty()) {
      if (!image.hidden_image.has_value()) {
        return Status::Internal("hidden projection without hidden image");
      }
      hid_reader.emplace(&ctx_->flash(), image.hidden_image.value(),
                         io_bufs.data() + 2 * ram.buffer_size());
      hid_row.resize(image.hidden_image->row_width);
    }

    // σVH iteration state: either the payload rows or the id universe.
    uint64_t payload_pos = 0;
    RowId iota_next = 0;
    RowId iota_n = static_cast<RowId>(image.row_count);
    auto next_entry = [&](RowId* id, const uint8_t** values) -> bool {
      while (true) {
        if (mt.has_vis_side) {
          if (payload_pos >= mt.payload.rows) return false;
          const uint8_t* row =
              mt.payload.bytes.data() + payload_pos * mt.payload.row_width;
          *id = DecodeFixed32(row);
          *values = row + 4;
          payload_pos += 1;
        } else {
          if (iota_next >= iota_n) return false;
          *id = iota_next++;
          *values = nullptr;
        }
        if (bloom.has_value() && !bloom->MightContain(*id)) continue;
        return true;
      }
    };

    std::vector<RowId> chunk_ids;
    std::vector<uint8_t> chunk_values;  // vis+hid per entry
    chunk_ids.reserve(chunk_capacity);
    bool stream_done = false;
    while (!stream_done) {
      chunk_ids.clear();
      chunk_values.clear();
      while (chunk_ids.size() < chunk_capacity) {
        RowId id;
        const uint8_t* values = nullptr;
        if (!next_entry(&id, &values)) {
          stream_done = true;
          break;
        }
        chunk_ids.push_back(id);
        size_t base = chunk_values.size();
        chunk_values.resize(base + mt.vis_width + mt.hid_width);
        if (mt.vis_width > 0 && values != nullptr) {
          std::memcpy(chunk_values.data() + base, values, mt.vis_width);
        }
        if (hid_reader.has_value()) {
          GHOSTDB_RETURN_NOT_OK(hid_reader->ReadRow(id, hid_row.data()));
          uint8_t* dst = chunk_values.data() + base + mt.vis_width;
          for (ColumnId c : mt.hid_cols) {
            const auto& col = ctx_->schema->table(mt.table).columns[c];
            std::memcpy(dst, hid_row.data() + image.hidden_offsets[c],
                        col.width);
            dst += col.width;
          }
        }
      }
      if (chunk_ids.empty()) break;
      // Scan the column run; emit matches as <pos, values>.
      storage::IdRunReader col(&ctx_->flash(), mt.column_run,
                               io_bufs.data());
      GHOSTDB_RETURN_NOT_OK(col.Prime());
      storage::RunWriter out(&ctx_->flash(), ctx_->allocator,
                             io_bufs.data() + ram.buffer_size(),
                             "project-out");
      uint32_t pos = 0;
      std::vector<uint8_t> out_row(mt.out_width);
      uint64_t emitted = 0;
      while (col.valid()) {
        RowId id = col.head();
        auto it =
            std::lower_bound(chunk_ids.begin(), chunk_ids.end(), id);
        if (it != chunk_ids.end() && *it == id) {
          size_t idx = static_cast<size_t>(it - chunk_ids.begin());
          EncodeFixed32(out_row.data(), pos);
          if (mt.vis_width + mt.hid_width > 0) {
            std::memcpy(out_row.data() + 4,
                        chunk_values.data() + idx * (mt.vis_width +
                                                     mt.hid_width),
                        mt.vis_width + mt.hid_width);
          }
          GHOSTDB_RETURN_NOT_OK(out.Append(out_row.data(), mt.out_width));
          emitted += 1;
        }
        pos += 1;
        GHOSTDB_RETURN_NOT_OK(col.Advance());
      }
      GHOSTDB_ASSIGN_OR_RETURN(storage::RunRef run, out.Finish());
      if (emitted > 0) {
        mt.pass_runs.push_back(std::move(run));
      } else {
        GHOSTDB_RETURN_NOT_OK(
            storage::FreeRun(ctx_->allocator, run, "project-out"));
      }
    }
    GHOSTDB_RETURN_NOT_OK(
        storage::FreeRun(ctx_->allocator, mt.column_run, "project-col"));
    mt.column_run = storage::RunRef{};
  }

  // Anchor-side inputs for the final merge.
  anchor_vis_cols_ = query.ProjectedVisibleColumns(*ctx_->schema, anchor);
  anchor_hid_cols_ = query.ProjectedHiddenColumns(*ctx_->schema, anchor);
  VisTable* anchor_vt = VisTableOf(state, anchor);
  bool anchor_exact =
      anchor_vt != nullptr && anchor_vt->need_exact_at_projection;
  need_anchor_payload_ = !anchor_vis_cols_.empty() || anchor_exact;
  if (need_anchor_payload_) {
    GHOSTDB_ASSIGN_OR_RETURN(
        anchor_payload_,
        ctx_->untrusted->ServeProjection(query, anchor, anchor_vis_cols_,
                                         ctx_->vis_prefetch));
  }

  // Buffer budget for the final merge: F' + one per pass run + anchor TiH.
  {
    uint32_t needed = 1;
    for (auto& mt : mjoin_) {
      needed += static_cast<uint32_t>(mt.pass_runs.size());
    }
    if (!anchor_hid_cols_.empty()) needed += 1;
    if (needed > ram.free_buffers()) {
      for (auto& mt : mjoin_) {
        GHOSTDB_RETURN_NOT_OK(MergeRowRuns(
            &ctx_->flash(), &ram, ctx_->allocator, &mt.pass_runs,
            mt.out_width, 1, "project-out"));
      }
    }
  }

  // Final-merge streaming state.
  uint32_t final_buffers = 1;
  for (auto& mt : mjoin_) {
    final_buffers += static_cast<uint32_t>(mt.pass_runs.size());
  }
  if (!anchor_hid_cols_.empty()) final_buffers += 1;
  GHOSTDB_ASSIGN_OR_RETURN(bufs_, device::RamGuard::Acquire(&ram, final_buffers, "final-merge"));
  size_t buf_idx = 0;
  auto next_buf = [&]() {
    return bufs_.data() + (buf_idx++) * ram.buffer_size();
  };

  fprime_.emplace(&ctx_->flash(), sj.fprime, sj.row_width, next_buf());
  GHOSTDB_RETURN_NOT_OK(fprime_->Prime());

  for (auto& mt : mjoin_) {
    TableReaders tr;
    tr.mt = &mt;
    for (auto& run : mt.pass_runs) {
      tr.readers.push_back(std::make_unique<RowRunReader>(
          &ctx_->flash(), run, mt.out_width, next_buf()));
      GHOSTDB_RETURN_NOT_OK(tr.readers.back()->Prime());
    }
    table_readers_.push_back(std::move(tr));
  }

  const core::TableImage& anchor_image = ctx_->store->tables[anchor];
  if (!anchor_hid_cols_.empty()) {
    if (!anchor_image.hidden_image.has_value()) {
      return Status::Internal("anchor hidden projection without image");
    }
    anchor_hid_reader_.emplace(&ctx_->flash(),
                               anchor_image.hidden_image.value(),
                               next_buf());
    anchor_hid_row_.resize(anchor_image.hidden_image->row_width);
  }
  mjoin_rows_.resize(mjoin_.size());
  mjoin_row_copies_.resize(mjoin_.size());
  return CompileCellSources();
}

Status ProjectOp::CompileCellSources() {
  // One source per SELECT item, so the per-row work in Next() is a bounded
  // memcpy of already-encoded bytes — the offset searches happen once here.
  const BoundQuery& query = *ctx_->query;
  const SjState& sj = ctx_->pipeline.sj;
  TableId anchor = query.anchor;
  const core::TableImage& anchor_image = ctx_->store->tables[anchor];
  if (!anchor_image.global_ids.empty()) {
    anchor_global_ids_ = &anchor_image.global_ids;
  }
  for (const auto& item : query.select) {
    const auto& cols = ctx_->schema->table(item.table).columns;
    CellSource src;
    if (item.table == anchor) {
      if (item.is_id) {
        src.kind = CellSource::Kind::kAnchorId;
        src.width = 4;
      } else if (!cols[item.column].hidden) {
        src.kind = CellSource::Kind::kAnchorVis;
        for (ColumnId c : anchor_vis_cols_) {
          if (c == item.column) break;
          src.offset += cols[c].width;
        }
        src.width = cols[item.column].width;
      } else {
        src.kind = CellSource::Kind::kAnchorHid;
        src.offset = anchor_image.hidden_offsets[item.column];
        src.width = cols[item.column].width;
      }
      cell_sources_.push_back(src);
      continue;
    }
    if (item.is_id) {
      auto off = sj.ColumnOffset(item.table, anchor);
      if (!off.has_value()) {
        return Status::Internal("select id missing from F'");
      }
      src.kind = CellSource::Kind::kFPrimeId;
      src.offset = *off;
      src.width = 4;
      cell_sources_.push_back(src);
      continue;
    }
    // Value column of a non-anchor table: from its MJoin output row
    // (<pos, vlist, hlist>).
    size_t mi = 0;
    while (mi < mjoin_.size() && mjoin_[mi].table != item.table) ++mi;
    if (mi == mjoin_.size()) {
      return Status::Internal("projected table missing from MJoin");
    }
    const MJoinTable& mt = mjoin_[mi];
    // Both kinds read the same MJoin output row here (vlist and hlist are
    // fused in <pos, vlist, hlist>); the kind still records which side the
    // cell came from, matching BruteForceProjectOp's semantics.
    src.kind = cols[item.column].hidden ? CellSource::Kind::kTableHid
                                        : CellSource::Kind::kTableVis;
    src.index = mi;
    src.offset = 4;
    bool found = false;
    if (!cols[item.column].hidden) {
      for (ColumnId c : mt.vis_cols) {
        if (c == item.column) {
          found = true;
          break;
        }
        src.offset += cols[c].width;
      }
    } else {
      src.offset += mt.vis_width;
      for (ColumnId c : mt.hid_cols) {
        if (c == item.column) {
          found = true;
          break;
        }
        src.offset += cols[c].width;
      }
    }
    if (!found) {
      return Status::Internal("column missing from MJoin output");
    }
    src.width = cols[item.column].width;
    cell_sources_.push_back(src);
  }
  return Status::OK();
}

Result<ColumnBatch> ProjectOp::Next() {
  auto scope = ctx_->clock().Enter("project");

  ColumnBatch batch =
      ColumnBatch::Make(ctx_->value_layout, ctx_->batch_rows);
  while (fprime_.has_value() && fprime_->valid() &&
         batch.rows < ctx_->batch_rows) {
    const uint8_t* frow = fprime_->row();
    RowId anchor_id = DecodeFixed32(frow);
    bool drop = false;

    for (size_t i = 0; i < table_readers_.size() && !drop; ++i) {
      auto& tr = table_readers_[i];
      mjoin_rows_[i] = nullptr;
      for (auto& r : tr.readers) {
        while (r->valid() && r->key() < pos_) {
          GHOSTDB_RETURN_NOT_OK(r->Advance());
        }
        if (r->valid() && r->key() == pos_) {
          mjoin_row_copies_[i].assign(r->row(),
                                      r->row() + tr.mt->out_width);
          mjoin_rows_[i] = mjoin_row_copies_[i].data();
        }
      }
      if (mjoin_rows_[i] == nullptr) drop = true;
    }

    const uint8_t* anchor_vis_row = nullptr;
    if (!drop && need_anchor_payload_) {
      while (anchor_payload_pos_ < anchor_payload_.rows &&
             DecodeFixed32(anchor_payload_.bytes.data() +
                           anchor_payload_pos_ *
                               anchor_payload_.row_width) < anchor_id) {
        anchor_payload_pos_ += 1;
      }
      if (anchor_payload_pos_ < anchor_payload_.rows &&
          DecodeFixed32(anchor_payload_.bytes.data() +
                        anchor_payload_pos_ * anchor_payload_.row_width) ==
              anchor_id) {
        anchor_vis_row = anchor_payload_.bytes.data() +
                         anchor_payload_pos_ * anchor_payload_.row_width +
                         4;
      } else {
        drop = true;  // fails the anchor's visible selection
      }
    }

    if (!drop) {
      if (anchor_hid_reader_.has_value()) {
        GHOSTDB_RETURN_NOT_OK(
            anchor_hid_reader_->ReadRow(anchor_id, anchor_hid_row_.data()));
      }
      // A sharded store surfaces global anchor ids: projected id cells and
      // the per-row ordering seq both use the global id, so the merged
      // gather stream is byte-identical to the unsharded engine's.
      RowId global_id = anchor_global_ids_ != nullptr
                            ? (*anchor_global_ids_)[anchor_id]
                            : anchor_id;
      if (emitted_ >= ctx_->rows_demanded) {
        batch.skipped_rows += 1;
      } else {
        for (size_t i = 0; i < cell_sources_.size(); ++i) {
          const CellSource& src = cell_sources_[i];
          switch (src.kind) {
            case CellSource::Kind::kAnchorId: {
              uint8_t enc[4];
              EncodeFixed32(enc, global_id);
              batch.AppendBytes(i, enc);
              break;
            }
            case CellSource::Kind::kFPrimeId:
              batch.AppendBytes(i, frow + src.offset);
              break;
            case CellSource::Kind::kAnchorVis:
              batch.AppendBytes(i, anchor_vis_row + src.offset);
              break;
            case CellSource::Kind::kAnchorHid:
              batch.AppendBytes(i, anchor_hid_row_.data() + src.offset);
              break;
            case CellSource::Kind::kTableVis:
            case CellSource::Kind::kTableHid:
              batch.AppendBytes(i, mjoin_rows_[src.index] + src.offset);
              break;
          }
        }
        batch.CommitRow();
        if (ctx_->emit_row_seq) batch.seqs.push_back(global_id);
        emitted_ += 1;
      }
    }
    pos_ += 1;
    GHOSTDB_RETURN_NOT_OK(fprime_->Advance());
  }
  return batch;
}

Status ProjectOp::Close() {
  // Cleanup projection temporaries (the stream may have been cut short by
  // a Limit upstream, or Open itself by a fault). Every table's runs are
  // released even if one release errors — the first error is reported
  // after the sweep.
  Status first;
  auto keep = [&first](Status s) {
    if (first.ok() && !s.ok()) first = std::move(s);
  };
  for (auto& mt : mjoin_) {
    for (auto& run : mt.pass_runs) {
      keep(storage::FreeRun(ctx_->allocator, run, "project-out"));
    }
    mt.pass_runs.clear();
    // Normally freed inline once the table's MJoin passes finish; still
    // live when Open faulted between vertical partitioning and that point.
    if (!mt.column_run.extents.empty()) {
      keep(storage::FreeRun(ctx_->allocator, mt.column_run, "project-col"));
      mt.column_run = storage::RunRef{};
    }
  }
  keep(Operator::Close());
  return first;
}

// ---------------------------------------------------------------------------
// BruteForceProjectOp: the Figs 12-13 baseline
// ---------------------------------------------------------------------------

Status BruteForceProjectOp::Open() {
  GHOSTDB_RETURN_NOT_OK(Operator::Open());
  auto& ram = ctx_->ram();
  auto& clock = ctx_->clock();
  auto scope = clock.Enter("project");
  PipelineState& state = ctx_->pipeline;
  const BoundQuery& query = *ctx_->query;
  const SjState& sj = state.sj;

  for (TableId t : query.tables) {
    BruteTable bt;
    bt.table = t;
    bt.vis_cols = query.ProjectedVisibleColumns(*ctx_->schema, t);
    bt.hid_cols = query.ProjectedHiddenColumns(*ctx_->schema, t);
    VisTable* vt = VisTableOf(state, t);
    bt.exact = vt != nullptr && vt->need_exact_at_projection;
    if (bt.vis_cols.empty() && bt.hid_cols.empty() && !bt.exact) continue;
    bt.has_vis_side = vt != nullptr || !bt.vis_cols.empty();
    if (bt.has_vis_side) {
      GHOSTDB_ASSIGN_OR_RETURN(
          bt.payload,
          ctx_->untrusted->ServeProjection(query, t, bt.vis_cols,
                                           ctx_->vis_prefetch));
      // Spool to flash: Brute-Force random-accesses vlist there (paper
      // section 6.5).
      GHOSTDB_ASSIGN_OR_RETURN(device::RamGuard wbuf,
                               device::RamGuard::AcquireOne(&ram, "brute-spool"));
      storage::RunWriter writer(&ctx_->flash(), ctx_->allocator,
                                wbuf.data(), "brute-spool");
      GHOSTDB_RETURN_NOT_OK(
          writer.Append(bt.payload.bytes.data(), bt.payload.bytes.size()));
      GHOSTDB_ASSIGN_OR_RETURN(bt.spool, writer.Finish());
    }
    if (!bt.hid_cols.empty()) {
      const core::TableImage& image = ctx_->store->tables[t];
      if (!image.hidden_image.has_value()) {
        return Status::Internal("hidden projection without image");
      }
      GHOSTDB_ASSIGN_OR_RETURN(bt.probe_buf, device::RamGuard::AcquireOne(&ram, "brute-hid"));
      bt.hid_reader.emplace(&ctx_->flash(), image.hidden_image.value(),
                            bt.probe_buf.data());
      bt.hid_row.resize(image.hidden_image->row_width);
    }
    tables_.push_back(std::move(bt));
  }

  GHOSTDB_ASSIGN_OR_RETURN(fbuf_, device::RamGuard::AcquireOne(&ram, "brute-fprime"));
  GHOSTDB_ASSIGN_OR_RETURN(probe_buf_, device::RamGuard::AcquireOne(&ram, "brute-probe"));
  fprime_.emplace(&ctx_->flash(), sj.fprime, sj.row_width, fbuf_.data());
  GHOSTDB_RETURN_NOT_OK(fprime_->Prime());

  const core::TableImage& anchor_image = ctx_->store->tables[query.anchor];
  if (!anchor_image.global_ids.empty()) {
    anchor_global_ids_ = &anchor_image.global_ids;
  }

  // Compile one cell source per SELECT item (offsets into the per-table
  // resolved vis/hid rows), so Next() emits encoded cells by memcpy.
  vis_rows_.resize(tables_.size());
  hid_rows_.resize(tables_.size());
  for (const auto& item : query.select) {
    const auto& cols = ctx_->schema->table(item.table).columns;
    CellSource src;
    if (item.is_id) {
      if (item.table == query.anchor) {
        src.kind = CellSource::Kind::kAnchorId;
      } else {
        auto off = sj.ColumnOffset(item.table, query.anchor);
        if (!off.has_value()) {
          return Status::Internal("select id missing from F'");
        }
        src.kind = CellSource::Kind::kFPrimeId;
        src.offset = *off;
      }
      src.width = 4;
      cell_sources_.push_back(src);
      continue;
    }
    size_t ti = 0;
    while (ti < tables_.size() && tables_[ti].table != item.table) ++ti;
    if (ti == tables_.size()) {
      return Status::Internal("projected table not resolved");
    }
    src.index = ti;
    src.width = cols[item.column].width;
    if (!cols[item.column].hidden) {
      src.kind = CellSource::Kind::kTableVis;
      for (ColumnId c : tables_[ti].vis_cols) {
        if (c == item.column) break;
        src.offset += cols[c].width;
      }
    } else {
      src.kind = CellSource::Kind::kTableHid;
      src.offset = ctx_->store->tables[item.table].hidden_offsets[item.column];
    }
    cell_sources_.push_back(src);
  }
  return Status::OK();
}

Result<ColumnBatch> BruteForceProjectOp::Next() {
  auto scope = ctx_->clock().Enter("project");
  const BoundQuery& query = *ctx_->query;
  const SjState& sj = ctx_->pipeline.sj;
  TableId anchor = query.anchor;

  ColumnBatch batch =
      ColumnBatch::Make(ctx_->value_layout, ctx_->batch_rows);
  while (fprime_.has_value() && fprime_->valid() &&
         batch.rows < ctx_->batch_rows) {
    const uint8_t* frow = fprime_->row();
    RowId anchor_id = DecodeFixed32(frow);
    bool drop = false;
    // Per table: resolve ids, fetch values with random accesses.
    for (size_t ti = 0; ti < tables_.size(); ++ti) {
      auto& bt = tables_[ti];
      vis_rows_[ti] = nullptr;
      hid_rows_[ti] = nullptr;
      RowId id;
      if (bt.table == anchor) {
        id = anchor_id;
      } else {
        auto off = sj.ColumnOffset(bt.table, anchor);
        if (!off.has_value()) {
          return Status::Internal("brute-force table missing from F'");
        }
        id = DecodeFixed32(frow + *off);
      }
      if (bt.has_vis_side) {
        // Cost model: one interpolated page probe into the spooled vlist
        // (ids are uniform); correctness from the host-side payload.
        uint64_t row_count = bt.payload.rows;
        if (row_count > 0) {
          uint64_t est_row = std::min<uint64_t>(
              row_count - 1,
              static_cast<uint64_t>(
                  (static_cast<double>(id) /
                   std::max<uint64_t>(
                       ctx_->store->tables[bt.table].row_count, 1)) *
                  static_cast<double>(row_count)));
          uint64_t byte = est_row * bt.payload.row_width;
          uint32_t page = static_cast<uint32_t>(
              byte / ctx_->flash().config().page_size);
          GHOSTDB_RETURN_NOT_OK(ctx_->flash().ReadPage(
              bt.spool.PageAt(page), probe_buf_.data(), 0,
              ctx_->flash().config().page_size));
        }
        // Binary search the payload for the actual row.
        uint64_t lo = 0, hi = bt.payload.rows;
        const uint8_t* hit = nullptr;
        while (lo < hi) {
          uint64_t mid = (lo + hi) / 2;
          const uint8_t* row =
              bt.payload.bytes.data() + mid * bt.payload.row_width;
          RowId rid = DecodeFixed32(row);
          if (rid < id) {
            lo = mid + 1;
          } else if (rid > id) {
            hi = mid;
          } else {
            hit = row + 4;
            break;
          }
        }
        if (hit == nullptr) {
          drop = true;  // fails the visible selection (or bloom FP)
          break;
        }
        vis_rows_[ti] = hit;
      }
      if (bt.hid_reader.has_value()) {
        GHOSTDB_RETURN_NOT_OK(
            bt.hid_reader->ReadRow(id, bt.hid_row.data()));
        hid_rows_[ti] = bt.hid_row.data();
      }
    }

    if (!drop) {
      // Same local-to-global id surfacing as ProjectOp::Next.
      RowId global_id = anchor_global_ids_ != nullptr
                            ? (*anchor_global_ids_)[anchor_id]
                            : anchor_id;
      if (emitted_ >= ctx_->rows_demanded) {
        batch.skipped_rows += 1;
      } else {
        for (size_t i = 0; i < cell_sources_.size(); ++i) {
          const CellSource& src = cell_sources_[i];
          switch (src.kind) {
            case CellSource::Kind::kAnchorId: {
              uint8_t enc[4];
              EncodeFixed32(enc, global_id);
              batch.AppendBytes(i, enc);
              break;
            }
            case CellSource::Kind::kFPrimeId:
              batch.AppendBytes(i, frow + src.offset);
              break;
            case CellSource::Kind::kTableVis:
              batch.AppendBytes(i, vis_rows_[src.index] + src.offset);
              break;
            case CellSource::Kind::kTableHid:
              batch.AppendBytes(i, hid_rows_[src.index] + src.offset);
              break;
            case CellSource::Kind::kAnchorVis:
            case CellSource::Kind::kAnchorHid:
              return Status::Internal("unexpected brute-force cell source");
          }
        }
        batch.CommitRow();
        if (ctx_->emit_row_seq) batch.seqs.push_back(global_id);
        emitted_ += 1;
      }
    }
    GHOSTDB_RETURN_NOT_OK(fprime_->Advance());
  }
  return batch;
}

Status BruteForceProjectOp::Close() {
  Status first;
  for (auto& bt : tables_) {
    if (!bt.spool.extents.empty()) {
      Status freed = storage::FreeRun(ctx_->allocator, bt.spool, "brute-spool");
      if (first.ok() && !freed.ok()) first = std::move(freed);
      bt.spool = storage::RunRef{};
    }
  }
  Status children = Operator::Close();
  return first.ok() ? children : first;
}

}  // namespace ghostdb::exec

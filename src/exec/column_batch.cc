#include "exec/column_batch.h"

#include <algorithm>

#include "common/coding.h"
#include "exec/operator.h"

namespace ghostdb::exec {

BatchLayout BatchLayout::Projection(const catalog::Schema& schema,
                                    const sql::BoundQuery& query) {
  BatchLayout layout;
  for (const auto& item : query.select) {
    if (item.is_id) {
      layout.Add(catalog::DataType::kInt32, 4);
    } else {
      const auto& col = schema.table(item.table).columns[item.column];
      layout.Add(col.type, col.width);
    }
  }
  return layout;
}

ColumnBatch ColumnBatch::Make(const BatchLayout* layout,
                              size_t reserve_rows) {
  ColumnBatch batch;
  batch.layout = layout;
  batch.columns.resize(layout->cols.size());
  for (size_t c = 0; c < layout->cols.size(); ++c) {
    batch.columns[c].reserve(reserve_rows * layout->cols[c].width);
  }
  return batch;
}

void ColumnBatch::AppendCellKey(size_t c, uint32_t physical_row,
                                std::string* out) const {
  const uint8_t* src = cell(c, physical_row);
  // Doubles are the one type whose encoding is not canonical per value:
  // -0.0 == 0.0 but their bit patterns differ. Canonicalize so byte
  // equality stays value equality.
  if (layout->cols[c].type == catalog::DataType::kDouble &&
      DecodeDouble(src) == 0.0) {
    uint8_t zero[8];
    EncodeDouble(zero, 0.0);
    out->append(reinterpret_cast<const char*>(zero), 8);
    return;
  }
  out->append(reinterpret_cast<const char*>(src), layout->cols[c].width);
}

void ColumnBatch::RowKey(uint32_t physical_row, std::string* out) const {
  out->clear();
  out->reserve(layout->row_width);
  for (size_t c = 0; c < layout->cols.size(); ++c) {
    AppendCellKey(c, physical_row, out);
  }
}

uint32_t SizeBatchRows(const BatchLayout& layout, const ExecConfig& config) {
  uint32_t width = std::max<uint32_t>(layout.row_width, 1);
  uint64_t rows = config.batch_bytes / width;
  rows = std::max<uint64_t>(rows, config.min_batch_rows);
  rows = std::min<uint64_t>(rows, config.max_batch_rows);
  // Never 0: it would both stall the projection loop and collide with
  // PhysicalPlan::batch_rows' "unsized" sentinel.
  return static_cast<uint32_t>(std::max<uint64_t>(rows, 1));
}

}  // namespace ghostdb::exec

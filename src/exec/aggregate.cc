#include "exec/aggregate.h"

#include <cstring>

#include "common/coding.h"

namespace ghostdb::exec {

using catalog::DataType;
using catalog::Value;

std::string_view AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kNone:
      return "";
    case AggFunc::kCountStar:
      return "COUNT(*)";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

bool AggRequiresInput(AggFunc f) {
  return f == AggFunc::kSum || f == AggFunc::kAvg || f == AggFunc::kMin ||
         f == AggFunc::kMax;
}

namespace {

/// Overflow-checked integer summation: SUM keeps an exact INT64
/// accumulator, and signed wrap near the INT64 extremes is UB — detect it
/// and fail instead of returning a silently wrong (or undefined) total.
/// AVG sums in double (its output is DOUBLE anyway), so it cannot
/// overflow. Shared by the Value and encoded paths so both fail
/// identically.
Status AddChecked(int64_t* acc, int64_t v) {
  if (__builtin_add_overflow(*acc, v, acc)) {
    return Status::OutOfRange("SUM overflows INT64");
  }
  return Status::OK();
}

}  // namespace

Status Aggregator::Accumulate(const Value& v) {
  count_ += 1;
  switch (func_) {
    case AggFunc::kNone:
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Status::OK();
    case AggFunc::kSum:
    case AggFunc::kAvg:
      switch (v.type()) {
        case DataType::kInt32:
          if (func_ == AggFunc::kSum) return AddChecked(&int_sum_, v.AsInt32());
          double_sum_.Add(v.AsInt32());
          return Status::OK();
        case DataType::kInt64:
          if (func_ == AggFunc::kSum) return AddChecked(&int_sum_, v.AsInt64());
          double_sum_.Add(static_cast<double>(v.AsInt64()));
          return Status::OK();
        case DataType::kDouble:
          double_sum_.Add(v.AsDouble());
          return Status::OK();
        case DataType::kString:
          return Status::InvalidArgument("SUM/AVG over CHAR column");
      }
      return Status::OK();
    case AggFunc::kMin:
      if (!min_.has_value() || v.Compare(*min_) < 0) min_ = v;
      return Status::OK();
    case AggFunc::kMax:
      if (!max_.has_value() || v.Compare(*max_) > 0) max_ = v;
      return Status::OK();
  }
  return Status::OK();
}

Status Aggregator::AccumulateEncoded(const uint8_t* src) {
  count_ += 1;
  switch (func_) {
    case AggFunc::kNone:
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Status::OK();
    case AggFunc::kSum:
    case AggFunc::kAvg:
      switch (input_type_) {
        case DataType::kInt32: {
          int32_t v = static_cast<int32_t>(DecodeFixed32(src));
          if (func_ == AggFunc::kSum) return AddChecked(&int_sum_, v);
          double_sum_.Add(v);
          return Status::OK();
        }
        case DataType::kInt64: {
          int64_t v = static_cast<int64_t>(DecodeFixed64(src));
          if (func_ == AggFunc::kSum) return AddChecked(&int_sum_, v);
          double_sum_.Add(static_cast<double>(v));
          return Status::OK();
        }
        case DataType::kDouble:
          double_sum_.Add(DecodeDouble(src));
          return Status::OK();
        case DataType::kString:
          return Status::InvalidArgument("SUM/AVG over CHAR column");
      }
      return Status::OK();
    case AggFunc::kMin:
      if (min_enc_.empty() ||
          catalog::CompareEncoded(input_type_, input_width_, src,
                                  min_enc_.data()) < 0) {
        min_enc_.assign(src, src + input_width_);
      }
      return Status::OK();
    case AggFunc::kMax:
      if (max_enc_.empty() ||
          catalog::CompareEncoded(input_type_, input_width_, src,
                                  max_enc_.data()) > 0) {
        max_enc_.assign(src, src + input_width_);
      }
      return Status::OK();
  }
  return Status::OK();
}

Status Aggregator::MergeFrom(const Aggregator& other) {
  count_ += other.count_;
  switch (func_) {
    case AggFunc::kNone:
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Status::OK();
    case AggFunc::kSum:
      if (input_type_ == DataType::kDouble) {
        double_sum_.Merge(other.double_sum_);
        return Status::OK();
      }
      return AddChecked(&int_sum_, other.int_sum_);
    case AggFunc::kAvg:
      double_sum_.Merge(other.double_sum_);
      return Status::OK();
    case AggFunc::kMin:
      if (!other.min_enc_.empty() &&
          (min_enc_.empty() ||
           catalog::CompareEncoded(input_type_, input_width_,
                                   other.min_enc_.data(),
                                   min_enc_.data()) < 0)) {
        min_enc_ = other.min_enc_;
      }
      if (other.min_.has_value() &&
          (!min_.has_value() || other.min_->Compare(*min_) < 0)) {
        min_ = other.min_;
      }
      return Status::OK();
    case AggFunc::kMax:
      if (!other.max_enc_.empty() &&
          (max_enc_.empty() ||
           catalog::CompareEncoded(input_type_, input_width_,
                                   other.max_enc_.data(),
                                   max_enc_.data()) > 0)) {
        max_enc_ = other.max_enc_;
      }
      if (other.max_.has_value() &&
          (!max_.has_value() || other.max_->Compare(*max_) > 0)) {
        max_ = other.max_;
      }
      return Status::OK();
  }
  return Status::OK();
}

uint32_t Aggregator::PartialWidth(AggFunc func, DataType input_type,
                                  uint32_t input_width) {
  constexpr uint32_t kCountWidth = 8;  // leading u64 input count
  switch (func) {
    case AggFunc::kNone:
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return kCountWidth;
    case AggFunc::kSum:
      return input_type == DataType::kDouble
                 ? kCountWidth + static_cast<uint32_t>(
                                     ExactDoubleSum::kEncodedSize)
                 : kCountWidth + 8;
    case AggFunc::kAvg:
      return kCountWidth +
             static_cast<uint32_t>(ExactDoubleSum::kEncodedSize);
    case AggFunc::kMin:
    case AggFunc::kMax:
      return kCountWidth + input_width;
  }
  return kCountWidth;
}

void Aggregator::EncodePartial(uint8_t* dst) const {
  EncodeFixed64(dst, count_);
  dst += 8;
  switch (func_) {
    case AggFunc::kNone:
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return;
    case AggFunc::kSum:
      if (input_type_ != DataType::kDouble) {
        EncodeFixed64(dst, static_cast<uint64_t>(int_sum_));
        return;
      }
      double_sum_.Serialize(dst);
      return;
    case AggFunc::kAvg:
      double_sum_.Serialize(dst);
      return;
    case AggFunc::kMin:
    case AggFunc::kMax: {
      const std::vector<uint8_t>& enc =
          func_ == AggFunc::kMin ? min_enc_ : max_enc_;
      std::memset(dst, 0, input_width_);
      if (!enc.empty()) {
        std::memcpy(dst, enc.data(), input_width_);
      } else if (func_ == AggFunc::kMin && min_.has_value()) {
        min_->Encode(dst, input_width_);
      } else if (func_ == AggFunc::kMax && max_.has_value()) {
        max_->Encode(dst, input_width_);
      }
      return;
    }
  }
}

Status Aggregator::AccumulatePartial(const uint8_t* src) {
  uint64_t n = DecodeFixed64(src);
  if (n == 0) return Status::OK();  // empty partial: no state to fold
  count_ += n;
  src += 8;
  switch (func_) {
    case AggFunc::kNone:
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Status::OK();
    case AggFunc::kSum:
      if (input_type_ != DataType::kDouble) {
        return AddChecked(&int_sum_,
                          static_cast<int64_t>(DecodeFixed64(src)));
      }
      double_sum_.Merge(ExactDoubleSum::Deserialize(src));
      return Status::OK();
    case AggFunc::kAvg:
      double_sum_.Merge(ExactDoubleSum::Deserialize(src));
      return Status::OK();
    case AggFunc::kMin:
      if (min_enc_.empty() ||
          catalog::CompareEncoded(input_type_, input_width_, src,
                                  min_enc_.data()) < 0) {
        min_enc_.assign(src, src + input_width_);
      }
      return Status::OK();
    case AggFunc::kMax:
      if (max_enc_.empty() ||
          catalog::CompareEncoded(input_type_, input_width_, src,
                                  max_enc_.data()) > 0) {
        max_enc_.assign(src, src + input_width_);
      }
      return Status::OK();
  }
  return Status::OK();
}

catalog::DataType Aggregator::OutputType() const {
  switch (func_) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return DataType::kInt64;
    case AggFunc::kSum:
      return input_type_ == DataType::kDouble ? DataType::kDouble
                                              : DataType::kInt64;
    case AggFunc::kAvg:
      return DataType::kDouble;
    default:
      return input_type_;
  }
}

Result<Value> Aggregator::Finish() const {
  switch (func_) {
    case AggFunc::kNone:
      return Status::Internal("Finish on non-aggregate");
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      // The counter is u64; the SQL-facing type is INT64. The narrowing
      // can only overflow for > 9.2e18 rows, but make it checked so a
      // pathological count can never surface as a negative number.
      if (count_ > static_cast<uint64_t>(INT64_MAX)) {
        return Status::OutOfRange("COUNT overflows INT64");
      }
      return Value::Int64(static_cast<int64_t>(count_));
    case AggFunc::kSum:
      if (count_ == 0) return Status::NotFound("SUM over an empty input");
      if (input_type_ == DataType::kDouble) {
        return Value::Double(double_sum_.Finish());
      }
      return Value::Int64(int_sum_);
    case AggFunc::kAvg:
      if (count_ == 0) return Status::NotFound("AVG over an empty input");
      return Value::Double(double_sum_.Finish() /
                           static_cast<double>(count_));
    case AggFunc::kMin:
      if (!min_enc_.empty()) {
        return Value::Decode(min_enc_.data(), input_type_, input_width_);
      }
      if (!min_.has_value()) {
        return Status::NotFound("MIN over an empty input");
      }
      return *min_;
    case AggFunc::kMax:
      if (!max_enc_.empty()) {
        return Value::Decode(max_enc_.data(), input_type_, input_width_);
      }
      if (!max_.has_value()) {
        return Status::NotFound("MAX over an empty input");
      }
      return *max_;
  }
  return Status::Internal("unreachable");
}

}  // namespace ghostdb::exec

// The projection operators (paper section 4 / Figs 12-13): turn the
// flash-resident F' into value rows. Open() runs the blocking passes
// (vertical partitioning, per-table MJoin); Next() streams the final merge
// by anchor position as RowBatches.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "exec/operator.h"
#include "exec/row_run.h"
#include "storage/fixed_table.h"

namespace ghostdb::exec {

/// \brief The section 4 Project algorithm: Bloom-filtered MJoin per
/// projected table, then a final positional merge with the anchor's Vis
/// payload and hidden image. `use_bf=false` is the NoBF ablation.
class ProjectOp final : public Operator {
 public:
  ProjectOp(ExecContext* ctx, bool use_bf)
      : Operator(ctx), use_bf_(use_bf) {}
  std::string_view name() const override { return "Project"; }
  Status Open() override;
  Result<RowBatch> Next() override;
  Status Close() override;

 private:
  /// Per-table MJoin state and outputs.
  struct MJoinTable {
    catalog::TableId table;
    std::vector<catalog::ColumnId> vis_cols;
    std::vector<catalog::ColumnId> hid_cols;
    uint32_t vis_width = 0;
    uint32_t hid_width = 0;
    uint32_t out_width = 4;  ///< pos + vis + hid
    bool has_vis_side = false;
    storage::RunRef column_run;              ///< Ti ids in pos order
    std::vector<storage::RunRef> pass_runs;  ///< <pos, vlist, hlist> per pass
    untrusted::ProjectionPayload payload;    ///< Vis values (sorted by id)
  };
  struct TableReaders {
    MJoinTable* mt;
    std::vector<std::unique_ptr<RowRunReader>> readers;
  };

  bool use_bf_;
  std::vector<MJoinTable> mjoin_;
  std::vector<catalog::ColumnId> anchor_vis_cols_;
  std::vector<catalog::ColumnId> anchor_hid_cols_;
  bool need_anchor_payload_ = false;
  untrusted::ProjectionPayload anchor_payload_;

  // Final-merge streaming state (set up at the end of Open()).
  device::BufferHandle bufs_;
  std::optional<RowRunReader> fprime_;
  std::vector<TableReaders> table_readers_;
  std::optional<storage::FixedTableReader> anchor_hid_reader_;
  std::vector<uint8_t> anchor_hid_row_;
  uint64_t anchor_payload_pos_ = 0;
  std::vector<const uint8_t*> mjoin_rows_;
  std::vector<std::vector<uint8_t>> mjoin_row_copies_;
  uint32_t pos_ = 0;
  uint64_t emitted_ = 0;
};

/// \brief Brute-Force projection baseline: streams F' once, random-accessing
/// the spooled Vis payloads and hidden images per row.
class BruteForceProjectOp final : public Operator {
 public:
  explicit BruteForceProjectOp(ExecContext* ctx) : Operator(ctx) {}
  std::string_view name() const override { return "BruteForceProject"; }
  Status Open() override;
  Result<RowBatch> Next() override;
  Status Close() override;

 private:
  /// Per-table state: spooled Vis values + hidden reader.
  struct BruteTable {
    catalog::TableId table;
    std::vector<catalog::ColumnId> vis_cols;
    std::vector<catalog::ColumnId> hid_cols;
    untrusted::ProjectionPayload payload;
    storage::RunRef spool;  ///< payload copied to flash (randomly accessed)
    bool has_vis_side = false;
    bool exact = false;
    std::optional<storage::FixedTableReader> hid_reader;
    std::vector<uint8_t> hid_row;
    device::BufferHandle probe_buf;
  };

  std::vector<BruteTable> tables_;
  device::BufferHandle fbuf_;
  device::BufferHandle probe_buf_;
  std::optional<RowRunReader> fprime_;
  uint64_t emitted_ = 0;
};

}  // namespace ghostdb::exec

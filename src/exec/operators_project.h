// The projection operators (paper section 4 / Figs 12-13): turn the
// flash-resident F' into value rows. Open() runs the blocking passes
// (vertical partitioning, per-table MJoin) and compiles a per-SELECT-item
// cell-source plan; Next() streams the final merge by anchor position as
// columnar ColumnBatches, memcpy-ing each cell from its already-encoded
// source (F' ids, Vis payload rows, hidden-image rows, MJoin output rows)
// — no Value is materialized on the hot path.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "device/guards.h"
#include "exec/operator.h"
#include "exec/row_run.h"
#include "storage/fixed_table.h"

namespace ghostdb::exec {

/// \brief Where one output cell's encoded bytes come from, resolved once
/// at Open() so the per-row work is a bounded memcpy.
struct CellSource {
  enum class Kind : uint8_t {
    kAnchorId,   ///< the anchor surrogate id (encoded from the F' cursor)
    kFPrimeId,   ///< a non-anchor id column of F' at `offset`
    kAnchorVis,  ///< anchor Vis payload row at `offset`
    kAnchorHid,  ///< anchor hidden-image row at `offset`
    kTableVis,   ///< table `index`'s vis bytes at `offset`
    kTableHid,   ///< table `index`'s hidden bytes at `offset`
  };
  Kind kind;
  uint32_t offset = 0;  ///< byte offset within the source row
  uint32_t width = 0;   ///< encoded cell width
  size_t index = 0;     ///< per-table source index (kTableVis/kTableHid)
};

/// \brief The section 4 Project algorithm: Bloom-filtered MJoin per
/// projected table, then a final positional merge with the anchor's Vis
/// payload and hidden image. `use_bf=false` is the NoBF ablation.
class ProjectOp final : public Operator {
 public:
  ProjectOp(ExecContext* ctx, bool use_bf)
      : Operator(ctx), use_bf_(use_bf) {}
  std::string_view name() const override { return "Project"; }
  Status Open() override;
  Result<ColumnBatch> Next() override;
  Status Close() override;

 private:
  /// Per-table MJoin state and outputs.
  struct MJoinTable {
    catalog::TableId table;
    std::vector<catalog::ColumnId> vis_cols;
    std::vector<catalog::ColumnId> hid_cols;
    uint32_t vis_width = 0;
    uint32_t hid_width = 0;
    uint32_t out_width = 4;  ///< pos + vis + hid
    bool has_vis_side = false;
    storage::RunRef column_run;              ///< Ti ids in pos order
    std::vector<storage::RunRef> pass_runs;  ///< <pos, vlist, hlist> per pass
    untrusted::ProjectionPayload payload;    ///< Vis values (sorted by id)
  };
  struct TableReaders {
    MJoinTable* mt;
    std::vector<std::unique_ptr<RowRunReader>> readers;
  };

  /// Resolves query.select into cell sources (kTableVis/kTableHid index
  /// into mjoin_).
  Status CompileCellSources();

  bool use_bf_;
  std::vector<MJoinTable> mjoin_;
  std::vector<catalog::ColumnId> anchor_vis_cols_;
  std::vector<catalog::ColumnId> anchor_hid_cols_;
  bool need_anchor_payload_ = false;
  untrusted::ProjectionPayload anchor_payload_;
  std::vector<CellSource> cell_sources_;

  // Final-merge streaming state (set up at the end of Open()).
  device::RamGuard bufs_;
  std::optional<RowRunReader> fprime_;
  std::vector<TableReaders> table_readers_;
  std::optional<storage::FixedTableReader> anchor_hid_reader_;
  std::vector<uint8_t> anchor_hid_row_;
  uint64_t anchor_payload_pos_ = 0;
  std::vector<const uint8_t*> mjoin_rows_;
  std::vector<std::vector<uint8_t>> mjoin_row_copies_;
  uint32_t pos_ = 0;
  uint64_t emitted_ = 0;
  /// Local-to-global anchor id map of a sharded store (null = identity):
  /// projected anchor ids and per-row seqs surface global ids so sharded
  /// answers are byte-identical to the unsharded engine.
  const std::vector<catalog::RowId>* anchor_global_ids_ = nullptr;
};

/// \brief Brute-Force projection baseline: streams F' once, random-accessing
/// the spooled Vis payloads and hidden images per row.
class BruteForceProjectOp final : public Operator {
 public:
  explicit BruteForceProjectOp(ExecContext* ctx) : Operator(ctx) {}
  std::string_view name() const override { return "BruteForceProject"; }
  Status Open() override;
  Result<ColumnBatch> Next() override;
  Status Close() override;

 private:
  /// Per-table state: spooled Vis values + hidden reader.
  struct BruteTable {
    catalog::TableId table;
    std::vector<catalog::ColumnId> vis_cols;
    std::vector<catalog::ColumnId> hid_cols;
    untrusted::ProjectionPayload payload;
    storage::RunRef spool;  ///< payload copied to flash (randomly accessed)
    bool has_vis_side = false;
    bool exact = false;
    std::optional<storage::FixedTableReader> hid_reader;
    std::vector<uint8_t> hid_row;
    device::RamGuard probe_buf;
  };

  std::vector<BruteTable> tables_;
  device::RamGuard fbuf_;
  device::RamGuard probe_buf_;
  std::optional<RowRunReader> fprime_;
  std::vector<CellSource> cell_sources_;
  /// Per-tables_ resolved source rows for the row under the F' cursor.
  std::vector<const uint8_t*> vis_rows_;
  std::vector<const uint8_t*> hid_rows_;
  uint64_t emitted_ = 0;
  /// Local-to-global anchor id map (see ProjectOp::anchor_global_ids_).
  const std::vector<catalog::RowId>* anchor_global_ids_ = nullptr;
};

}  // namespace ghostdb::exec

// The physical-operator execution engine.
//
// A query runs as a tree of Operators instantiated from a plan::PhysicalPlan.
// All operators share one ExecContext, which owns the handles to the device
// (simulated clock + 32-buffer RAM budget + flash + channel), the query
// metrics, and the PipelineState flowing between the QEP_SJ stages.
//
// Two regimes, mirroring the paper:
//  * Below the projection (VisSelect, BloomBuild, Merge, SJoin, PostSelect)
//    operators work in id space under the strict RAM discipline. Their
//    product is the flash-resident F' run in PipelineState — Project scans
//    it multiple times, so it cannot be pulled value-at-a-time. Merge
//    pushes ids into SJoin through a sink, exactly the paper's pipelined
//    Merge -> SJoin -> ProbeBF -> Store composition.
//  * From the projection upward (Project/BruteForceProject, Aggregate,
//    Distinct, Sort, Limit) operators exchange columnar ColumnBatches
//    (column_batch.h) via pull (Next()), which is where ORDER BY / LIMIT /
//    DISTINCT and aggregation plug in. Cells stay in their fixed-width
//    flash encodings end to end; Values are decoded once, at the secure
//    rendering surface.
//
// The security invariant is structural: no operator holds a channel handle
// except through UntrustedEngine's audited request methods, so nothing
// derived from Hidden data can reach Untrusted.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/schema.h"
#include "catalog/value.h"
#include "common/result.h"
#include "exec/aggregate.h"
#include "exec/column_batch.h"
#include "common/status.h"
#include "core/secure_store.h"
#include "device/secure_device.h"
#include "exec/bloom.h"
#include "exec/merge.h"
#include "exec/thread_pool.h"
#include "plan/physical_plan.h"
#include "sql/binder.h"
#include "storage/page_allocator.h"
#include "storage/run.h"
#include "untrusted/engine.h"

namespace ghostdb::exec {

/// \brief Result-volume defense modes (PAPERS.md: "Practical Volume-Based
/// Attacks on Encrypted Databases"; ObliDB's padding-mode operators).
///
/// The transcript never carries result rows, but an honest-but-curious
/// observer of the secure display (or of any downstream consumer) still
/// sees *how many* rows each query produced — enough to run
/// volume-frequency and co-occurrence attacks against hidden predicates.
/// Padding inserts dummy rows above the relational tail that are stripped
/// at the QueryResult boundary, so answers never change; only the observed
/// volume does.
enum class VolumePadding : uint8_t {
  kOff,       ///< exact volumes (the attack surface the harness measures)
  kQuantize,  ///< round observed volume up to the next power of two
  /// Pad every query to its visible worst case: the anchor table's row
  /// count (bounded by LIMIT k / the 0-or-1 aggregate row). Two databases
  /// differing only in hidden data then show identical volumes.
  kWorstCase,
};

/// Smallest power of two >= max(n, 1). The quantized-volume bucket
/// function, shared by the padding operator, the spill-run padding, and
/// the tests asserting both.
inline uint64_t NextPowerOfTwo(uint64_t n) {
  uint64_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Execution knobs (defaults follow the paper).
struct ExecConfig {
  MergeOverflowPolicy merge_policy = MergeOverflowPolicy::kReduction;
  /// Bloom sizing target: m/n bits per element (paper: 8).
  double bloom_target_bpe = 8.0;
  /// Below this achievable m/n a Post-Filter is not worth executing
  /// (Fig 10: the filter would inject more false positives than it kills).
  double bloom_min_bpe = 2.0;
  /// RAM cap for one QEP_SJ Bloom filter, in buffers.
  uint32_t bloom_max_buffers = 16;
  /// When false, hidden selections deliver only self-level ids and must
  /// cascade through per-id index lookups to reach the anchor — the
  /// baseline the climbing index replaces (section 3.2 motivation;
  /// ablation A4).
  bool climbing_enabled = true;
  /// Keep at most this many result rows materialized for the caller
  /// (counts stay exact; benches set a small limit).
  uint64_t result_row_limit = UINT64_MAX;
  /// Byte budget per ColumnBatch pulled through the value-level operators.
  /// The planner turns this into rows-per-batch for the query's output row
  /// width (SizeBatchRows), clamped to [min_batch_rows, max_batch_rows].
  size_t batch_bytes = 64 * 1024;
  uint32_t min_batch_rows = 16;
  uint32_t max_batch_rows = 4096;
  /// Working-set budget of the blocking relational tail (Sort, Distinct,
  /// top-K), in device buffers. 0 = derive from the session's RAM
  /// partition (its pledged quota, or the shared reserve when the session
  /// pledged none) — visible inputs only, so the budget is cacheable.
  /// Tests and benches set tiny values to force the spill paths.
  uint32_t sort_budget_buffers = 0;
  /// Past the budget: spill sorted runs to flash and stream the merge
  /// (true), or fail with ResourceExhausted (false — the pre-spill
  /// behavior, kept for comparison benches and tests).
  bool spill_enabled = true;
  /// Planner rewrite: fuse Sort -> Limit k into a bounded top-K heap.
  bool topk_fusion = true;
  /// Parallelism degree for morsel-driven host-side work (visible scans,
  /// spill-generation sorts, batch key extraction). 0 = inherit the
  /// database-wide GhostDBConfig::worker_threads (stamped by
  /// GhostDB::Build); nonzero = explicit override for standalone-executor
  /// tests. Thread count never changes results or the channel transcript.
  uint32_t worker_threads = 0;
  /// Result-volume defense (see VolumePadding). Dummy rows are synthesized
  /// by a planner-emitted VolumePad root operator and stripped at the
  /// QueryResult boundary; answers are oracle-exact in every mode.
  VolumePadding volume_padding = VolumePadding::kOff;
  /// Also pad the relational tail's flash spill-run counts (per sorter,
  /// same mode as volume_padding): dummy one-page runs written and freed
  /// alongside the real ones, reducing the resolution of the spill-count
  /// side channel. Requires volume_padding != kOff.
  bool pad_spill_runs = false;
  /// Safety ceiling on dummy rows synthesized per query. Worst-case
  /// padding of a huge anchor table is real work; past the cap the pad
  /// truncates (weakening the defense) instead of running away.
  uint64_t padding_dummy_row_cap = 1ull << 20;
};

/// Rejects nonsensical knob combinations (zero/absurd batch_bytes, inverted
/// batch-row clamps, worker_threads past the supported ceiling) with
/// InvalidArgument instead of letting them silently misbehave downstream.
Status ValidateExecConfig(const ExecConfig& config);

/// Observable per-query costs.
struct QueryMetrics {
  SimNanos total_ns = 0;
  std::map<std::string, SimNanos> categories;  ///< merge/sjoin/store/...
  flash::FlashStats flash;
  uint64_t bytes_to_secure = 0;
  uint64_t bytes_to_untrusted = 0;
  uint64_t qepsj_rows = 0;     ///< rows out of QEP_SJ (superset w/ blooms)
  uint64_t result_rows = 0;    ///< exact final row count
  uint32_t peak_ram_buffers = 0;
  MergeStats merge;
  double bloom_fpr_estimate = 0.0;  ///< worst filter used in QEP_SJ
  uint64_t plan_cache_hits = 0;     ///< 1 if this query reused a cached plan
  uint64_t plan_cache_misses = 0;   ///< 1 if this query was planned afresh
  /// 1 if a cached plan existed but was stamped with a stale catalog stats
  /// version, so the strategy was re-chosen under live selectivities
  /// (neither a hit nor a miss).
  uint64_t plan_cache_replans = 0;
  /// Sorted runs the relational tail wrote to flash (generation spills
  /// plus intermediate merges) when a working set exceeded its budget.
  uint64_t sort_spill_runs = 0;
  /// Flash pages those spill runs occupied.
  uint64_t sort_spill_pages = 0;
  /// Rows the fused top-K sort rejected against the heap top without
  /// buffering — the work a full sort would have materialized.
  uint64_t topk_short_circuits = 0;
  /// Result volume a downstream observer sees: result_rows plus the dummy
  /// rows the padding mode emitted (== result_rows with padding off). The
  /// attack harness reads only this, never result_rows.
  uint64_t observed_volume = 0;
  /// Dummy rows synthesized by the VolumePad operator and stripped at the
  /// QueryResult boundary — the volume-defense overhead.
  uint64_t padding_rows = 0;
  /// Dummy spill runs the relational tail wrote (and freed) to pad its
  /// flash run counts (ExecConfig::pad_spill_runs).
  uint64_t padding_spill_runs = 0;
  /// Transient flash faults the device absorbed by retrying (the backoff
  /// is charged to the "fault-retry" clock category).
  uint64_t flash_retries = 0;
  /// Faults the injector fired during this query, retried or not —
  /// includes the ones a padded-mode masked replay recovered from.
  uint64_t faults_injected = 0;

  /// Folds another query's metrics into this one (counters sum, peaks
  /// take the max) — the single place the field list is walked, used by
  /// session totals and batch totals alike.
  void Accumulate(const QueryMetrics& other);
};

/// \brief Identity a query executes under: the session's id (transcript
/// tag), display name (diagnostics), and RAM partition (buffer quota).
/// Defaults describe the sessionless "main" path.
struct SessionBinding {
  int32_t id = -1;
  std::string name = "main";
  device::RamPartitionId ram_partition = device::kSharedRamPartition;
};

/// A query answer, delivered to the secure rendering surface.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<catalog::Value>> rows;  ///< up to result_row_limit
  uint64_t total_rows = 0;
  QueryMetrics metrics;
};

/// \brief Cost-counter baseline: captured before the first query-related
/// channel transfer so metrics include the query announcement and the
/// planner's Vis-count exchanges.
struct MetricSnapshot {
  SimNanos clock_ns = 0;
  std::map<std::string, SimNanos> categories;
  flash::FlashStats flash;
  uint64_t bytes_to_secure = 0;
  uint64_t bytes_to_untrusted = 0;
  uint64_t flash_retries = 0;
  uint64_t faults_injected = 0;

  static MetricSnapshot Take(device::SecureDevice* device);
  /// Fills the delta since this snapshot into `metrics`.
  void Delta(device::SecureDevice* device, QueryMetrics* metrics) const;
};

/// Per-table visible-strategy state, prepared by VisSelectOp and consumed
/// by the downstream QEP_SJ operators.
struct VisTable {
  catalog::TableId table;
  plan::VisStrategy strategy;
  std::vector<catalog::RowId> ids;   ///< Vis selection result (sorted)
  /// Basis for a Post-Filter Bloom: vt.ids, or Vis ∩ Hidden-at-Ti for the
  /// Cross variant. Filled by VisSelectOp, consumed by BloomBuildOp.
  std::vector<catalog::RowId> filter_basis;
  bool has_filter_basis = false;
  std::optional<BloomFilter> bloom;  ///< for post strategies in QEP_SJ
  uint32_t probe_offset = 0;         ///< byte offset of probe column in F'
  bool need_exact_at_projection = false;
  bool post_select = false;
};

/// Materialized QEP_SJ output F'.
struct SjState {
  storage::RunRef fprime;
  /// Non-anchor id columns of F', ascending TableId.
  std::vector<catalog::TableId> column_tables;
  uint32_t row_width = 4;
  uint64_t rows = 0;

  std::optional<uint32_t> ColumnOffset(catalog::TableId t,
                                       catalog::TableId anchor) const;
};

/// Dataflow state shared by the id-space operators of one query.
struct PipelineState {
  std::vector<VisTable> vis_tables;
  /// Hidden non-id predicates of the query, with fold bookkeeping (a
  /// predicate folded into a Cross intersection must not be re-applied at
  /// the anchor level).
  std::vector<const sql::BoundPredicate*> hidden_preds;
  std::vector<bool> folded;
  /// Anchor-level merge groups assembled by VisSelectOp (pre-filter climbs)
  /// and MergeOp (unfolded hidden selections, iota fallback).
  std::vector<MergeGroup> anchor_groups;
  SjState sj;
};

/// \brief One group's partial-aggregate state, shipped (in host memory)
/// from a scatter shard to the gather combiner of a sharded aggregate
/// query. The combiner merges groups by canonical key via
/// Aggregator::MergeFrom and orders the combined set by first_seq — the
/// smallest global anchor id folded into the group — which reproduces the
/// single-device first-arrival group emission order exactly.
struct PartialAggGroup {
  std::string key;  ///< canonical group key ("" for a global aggregate)
  std::vector<uint8_t> key_cells;  ///< raw encoded key cells (rendering)
  std::vector<Aggregator> aggs;    ///< one per aggregate SELECT item
  uint64_t first_seq = 0;
};

/// Merged per-shard projection output fed into a gather run (defined in
/// executor.h; here only pointed at by ExecContext).
struct GatherInput;

/// \brief Everything an operator needs: device resources (clock, RAM
/// budget, flash, channel), catalog, store handles, config, and the
/// per-query metrics + pipeline state.
struct ExecContext {
  device::SecureDevice* device = nullptr;
  storage::PageAllocator* allocator = nullptr;
  const catalog::Schema* schema = nullptr;
  const core::SecureStore* store = nullptr;
  untrusted::UntrustedEngine* untrusted = nullptr;
  const ExecConfig* config = nullptr;
  const sql::BoundQuery* query = nullptr;
  const plan::PlanChoice* choice = nullptr;
  /// Session the query runs for. RAM acquisitions are charged to its
  /// partition via the RamManager's active-partition register (set by the
  /// executor), so operators need no per-call plumbing.
  const SessionBinding* session = nullptr;
  /// Visible answers the PC speculatively evaluated for this query while
  /// the key served other sessions (may be null). Consumed by the Serve
  /// calls; the channel interaction is identical either way.
  untrusted::VisPrefetch* vis_prefetch = nullptr;
  QueryMetrics* metrics = nullptr;
  PipelineState pipeline;
  /// Column layout of the projection output (one column per SELECT item).
  /// Points at the cached plan's layout (or driver-owned storage for
  /// pinned plans); outlives every batch of the query.
  const BatchLayout* value_layout = nullptr;
  /// Rows per ColumnBatch through the value-level operators, sized by the
  /// planner (SizeBatchRows) from the output row width.
  uint32_t batch_rows = 256;
  /// Byte budget for the blocking relational tail's secure working set
  /// (Sort/Distinct/top-K). Derived by the executor from ExecConfig and
  /// the session's RAM partition — a pure function of visible inputs.
  /// Exceeding it spills (spill_enabled) or fails.
  size_t sort_budget_bytes = SIZE_MAX;
  /// How many materialized rows the consumer can use. When the plan has no
  /// value-level operators above the projection, the driver caps this at
  /// result_row_limit so the projection skips encoding rows nobody will
  /// see (counts stay exact via ColumnBatch::skipped_rows).
  uint64_t rows_demanded = UINT64_MAX;
  /// Visible worst-case result bound for the padding modes: the anchor
  /// table's row count (every result row corresponds to one anchor row).
  /// Set by the executor iff volume padding is on; 0 otherwise. A pure
  /// function of visible metadata, so padding targets derived from it are
  /// identical across hidden variants. Transcript sink: the bound decides
  /// the padded result volume, so leakcheck rejects hidden-derived stores.
  GHOSTDB_TRANSCRIPT_SINK uint64_t padding_row_bound = 0;
  /// Worker pool for morsel-parallel host compute (may be null: run
  /// inline). Workers obey the thread_pool.h contract — pure host value
  /// work, never device state, deterministic shard boundaries.
  ThreadPool* pool = nullptr;
  /// Effective parallelism degree for this query: min(plan.parallelism if
  /// set, pool width), 1 without a pool.
  uint32_t parallelism = 1;
  /// Scatter-shard mode: stamp each projected row's global anchor id into
  /// ColumnBatch::seqs (and EncodedRows::seqs at the boundary) so the
  /// gather phase can k-way merge per-shard streams back into the exact
  /// single-device global order.
  bool emit_row_seq = false;
  /// Scatter-shard aggregate mode: the (Group)Aggregate operator dumps its
  /// local groups here instead of rendering output rows (set only on
  /// scatter runs of aggregate plans).
  std::vector<PartialAggGroup>* partials_out = nullptr;
  /// Gather mode, aggregate plans: combined cross-shard partial groups
  /// (ordered by first_seq) that seed the (Group)Aggregate operator in
  /// place of child input — no children are built below it.
  const std::vector<PartialAggGroup>* gather_partials = nullptr;
  /// Gather mode, row plans: the seq-merged union of per-shard projection
  /// outputs, emitted by a GatherSourceOp substituted for the projection
  /// node so the unmodified relational tail runs once over the global
  /// stream.
  const GatherInput* gather_rows = nullptr;

  SimClock& clock() { return device->clock(); }
  device::RamManager& ram() { return device->ram(); }
  flash::FlashDevice& flash() { return device->flash(); }
};

/// \brief Base class of all physical operators.
///
/// Lifecycle: Open() (children first, then own blocking work), Next() until
/// an empty batch, Close() (own cleanup, then children). Close() must be
/// safe after a partially consumed stream — LimitOp stops pulling early.
class Operator {
 public:
  explicit Operator(ExecContext* ctx) : ctx_(ctx) {}
  virtual ~Operator() = default;
  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  virtual std::string_view name() const = 0;

  /// Default: opens children in order.
  virtual Status Open();

  /// Pulls the next batch of rows; empty batch = end of stream.
  virtual Result<ColumnBatch> Next() = 0;

  /// Default: closes children in order.
  virtual Status Close();

  void AddChild(std::unique_ptr<Operator> child) {
    children_.push_back(std::move(child));
  }
  Operator* child(size_t i = 0) const { return children_[i].get(); }
  size_t child_count() const { return children_.size(); }

 protected:
  ExecContext* ctx_;
  std::vector<std::unique_ptr<Operator>> children_;
};

/// Instantiates the concrete operator tree for `plan`. The returned root
/// owns the whole tree.
Result<std::unique_ptr<Operator>> BuildOperatorTree(
    ExecContext* ctx, const plan::PhysicalPlan& plan);

}  // namespace ghostdb::exec

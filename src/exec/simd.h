// SIMD kernels over encoded cells — the vectorized inner loops of the
// visible/hidden predicate scans, selection compaction, and projection cell
// gathering.
//
// Everything operates on the fixed-width on-flash encodings
// (catalog::Value::Encode: little-endian numerics, space-padded strings),
// which is exactly the layout vectorized engines want: a predicate scan is
// a strided gather + lane compare + mask compaction, with no Value ever
// materialized. Semantics are bit-for-bit those of the scalar path
// (CompareEncoded + EvalCompareResult): every kernel here has a reference
// implementation in simd::scalar that the dispatching entry points fall
// back to, that the micro benches measure against, and that the tests
// cross-check on random data.
//
// Dispatch is compile-time: with AVX2 enabled (the build probes the host
// and adds -mavx2 when it runs there; see CMakeLists), __AVX2__ selects
// the vector bodies, otherwise the portable scalar bodies compile in.
// Either way the kernels are pure functions of host memory — no device
// state, no allocation beyond the caller's output span — so they are safe
// from worker threads and can never perturb the channel transcript.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "catalog/stats.h"
#include "catalog/value.h"
#include "common/coding.h"
#include "core/annotations.h"

#if defined(__AVX2__)
#include <immintrin.h>
#define GHOSTDB_SIMD_AVX2 1
#else
#define GHOSTDB_SIMD_AVX2 0
#endif

// GCC's srcless _mm256_i32gather_* are defined in terms of a deliberately
// uninitialized pass-through operand, which -Wmaybe-uninitialized flags at
// every inlined use (GCC bug 105593). Nothing of ours is uninitialized.
#if GHOSTDB_SIMD_AVX2 && defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#define GHOSTDB_SIMD_DIAG_PUSHED 1
#endif

namespace ghostdb::exec::simd {

/// True when the vector bodies are compiled in (compile-time dispatch).
constexpr bool kAccelerated = GHOSTDB_SIMD_AVX2 != 0;

// ---------------------------------------------------------------------------
// Scalar reference kernels (always available; the fallback and the bench
// baseline).
// ---------------------------------------------------------------------------

namespace scalar {

/// Appends id_base + i to `out` for every i in [0, n) whose encoded cell at
/// base + i*stride satisfies (cell `op` literal); returns the count. The
/// literal must be encoded at the column's exact type/width from a value of
/// that type (strings: un-truncated) — the CompareEncoded fast-path guard
/// the callers already enforce.
inline size_t FilterEncoded(catalog::DataType type, uint32_t width,
                            const uint8_t* base, size_t stride, size_t n,
                            const uint8_t* literal, catalog::CompareOp op,
                            uint32_t id_base, uint32_t* out) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    int cmp = catalog::CompareEncoded(type, width, base + i * stride, literal);
    if (catalog::EvalCompareResult(cmp, op)) {
      out[count++] = id_base + static_cast<uint32_t>(i);
    }
  }
  return count;
}

/// flags[i] &= (cell_i `op` literal) for i in [0, n): the conjunctive
/// predicate refinement over a 0/1 flag vector.
inline void RefineEncoded(catalog::DataType type, uint32_t width,
                          const uint8_t* base, size_t stride, size_t n,
                          const uint8_t* literal, catalog::CompareOp op,
                          uint8_t* flags) {
  for (size_t i = 0; i < n; ++i) {
    int cmp = catalog::CompareEncoded(type, width, base + i * stride, literal);
    flags[i] &= catalog::EvalCompareResult(cmp, op) ? 1 : 0;
  }
}

/// Selection-vector compaction: appends id_base + i to `out` for every set
/// flag; returns the count.
GHOSTDB_WORKER_SAFE inline size_t CompactFlags(const uint8_t* flags, size_t n,
                                               uint32_t id_base,
                                               uint32_t* out) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (flags[i]) out[count++] = id_base + static_cast<uint32_t>(i);
  }
  return count;
}

/// Projection cell moves: for j in [0, n), copies `width` bytes from
/// src + idx[j]*stride + offset to dst + j*dst_stride.
GHOSTDB_WORKER_SAFE inline void GatherCells(const uint8_t* src, size_t stride,
                                            size_t offset, uint32_t width,
                                            const uint32_t* idx, size_t n,
                                            uint8_t* dst, size_t dst_stride) {
  for (size_t j = 0; j < n; ++j) {
    std::memcpy(dst + j * dst_stride,
                src + static_cast<size_t>(idx[j]) * stride + offset, width);
  }
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// AVX2 bodies
// ---------------------------------------------------------------------------

#if GHOSTDB_SIMD_AVX2

namespace detail {

/// Appends id_base + bit for every set bit of `mask`; returns new count.
inline size_t AppendMask(uint32_t mask, uint32_t id_base, uint32_t* out,
                         size_t count) {
  while (mask != 0) {
    out[count++] = id_base + static_cast<uint32_t>(__builtin_ctz(mask));
    mask &= mask - 1;
  }
  return count;
}

/// 8-lane i32 compare mask (bit i = lane i satisfies op).
inline uint32_t MaskI32(__m256i x, __m256i lit, catalog::CompareOp op) {
  using catalog::CompareOp;
  __m256i m = _mm256_setzero_si256();
  bool invert = false;
  switch (op) {
    case CompareOp::kEq: m = _mm256_cmpeq_epi32(x, lit); break;
    case CompareOp::kNe: m = _mm256_cmpeq_epi32(x, lit); invert = true; break;
    case CompareOp::kLt: m = _mm256_cmpgt_epi32(lit, x); break;
    case CompareOp::kGe: m = _mm256_cmpgt_epi32(lit, x); invert = true; break;
    case CompareOp::kGt: m = _mm256_cmpgt_epi32(x, lit); break;
    case CompareOp::kLe: m = _mm256_cmpgt_epi32(x, lit); invert = true; break;
  }
  uint32_t bits = static_cast<uint32_t>(
      _mm256_movemask_ps(_mm256_castsi256_ps(m)));
  return invert ? bits ^ 0xffu : bits;
}

/// 4-lane i64 compare mask.
inline uint32_t MaskI64(__m256i x, __m256i lit, catalog::CompareOp op) {
  using catalog::CompareOp;
  __m256i m = _mm256_setzero_si256();
  bool invert = false;
  switch (op) {
    case CompareOp::kEq: m = _mm256_cmpeq_epi64(x, lit); break;
    case CompareOp::kNe: m = _mm256_cmpeq_epi64(x, lit); invert = true; break;
    case CompareOp::kLt: m = _mm256_cmpgt_epi64(lit, x); break;
    case CompareOp::kGe: m = _mm256_cmpgt_epi64(lit, x); invert = true; break;
    case CompareOp::kGt: m = _mm256_cmpgt_epi64(x, lit); break;
    case CompareOp::kLe: m = _mm256_cmpgt_epi64(x, lit); invert = true; break;
  }
  uint32_t bits = static_cast<uint32_t>(
      _mm256_movemask_pd(_mm256_castsi256_pd(m)));
  return invert ? bits ^ 0xfu : bits;
}

/// 4-lane f64 compare mask. Ordered (NaN-false) predicates for everything
/// except kNe, matching scalar <,<=,>,>=,== / != semantics.
inline uint32_t MaskF64(__m256d x, __m256d lit, catalog::CompareOp op) {
  using catalog::CompareOp;
  __m256d m = _mm256_setzero_pd();
  switch (op) {
    case CompareOp::kEq: m = _mm256_cmp_pd(x, lit, _CMP_EQ_OQ); break;
    case CompareOp::kNe: m = _mm256_cmp_pd(x, lit, _CMP_NEQ_UQ); break;
    case CompareOp::kLt: m = _mm256_cmp_pd(x, lit, _CMP_LT_OQ); break;
    case CompareOp::kLe: m = _mm256_cmp_pd(x, lit, _CMP_LE_OQ); break;
    case CompareOp::kGt: m = _mm256_cmp_pd(x, lit, _CMP_GT_OQ); break;
    case CompareOp::kGe: m = _mm256_cmp_pd(x, lit, _CMP_GE_OQ); break;
  }
  return static_cast<uint32_t>(_mm256_movemask_pd(m));
}

/// Per 8-row block the gather offsets stay in [0, 8*stride), so the i32
/// offset lanes never overflow no matter how long the scan is: the base
/// pointer advances instead.
inline __m256i StrideOffsets8(size_t stride) {
  int32_t s = static_cast<int32_t>(stride);
  return _mm256_setr_epi32(0, s, 2 * s, 3 * s, 4 * s, 5 * s, 6 * s, 7 * s);
}

inline __m128i StrideOffsets4(size_t stride) {
  int32_t s = static_cast<int32_t>(stride);
  return _mm_setr_epi32(0, s, 2 * s, 3 * s);
}

}  // namespace detail

#endif  // GHOSTDB_SIMD_AVX2

// ---------------------------------------------------------------------------
// Dispatching entry points
// ---------------------------------------------------------------------------

/// See scalar::FilterEncoded. `out` needs room for n ids.
inline size_t FilterEncoded(catalog::DataType type, uint32_t width,
                            const uint8_t* base, size_t stride, size_t n,
                            const uint8_t* literal, catalog::CompareOp op,
                            uint32_t id_base, uint32_t* out) {
#if GHOSTDB_SIMD_AVX2
  using catalog::DataType;
  size_t count = 0;
  size_t i = 0;
  // Strides must fit the per-block i32 offset lanes (they are row widths —
  // a few hundred bytes — but stay defensive).
  if (stride <= (1u << 24)) {
    switch (type) {
      case DataType::kInt32: {
        __m256i lit = _mm256_set1_epi32(
            static_cast<int32_t>(DecodeFixed32(literal)));
        __m256i off = detail::StrideOffsets8(stride);
        for (; i + 8 <= n; i += 8) {
          __m256i x = _mm256_i32gather_epi32(
              reinterpret_cast<const int*>(base + i * stride), off, 1);
          count = detail::AppendMask(detail::MaskI32(x, lit, op),
                                     id_base + static_cast<uint32_t>(i), out,
                                     count);
        }
        break;
      }
      case DataType::kInt64: {
        __m256i lit = _mm256_set1_epi64x(
            static_cast<int64_t>(DecodeFixed64(literal)));
        __m128i off = detail::StrideOffsets4(stride);
        for (; i + 4 <= n; i += 4) {
          __m256i x = _mm256_i32gather_epi64(
              reinterpret_cast<const long long*>(base + i * stride), off, 1);
          count = detail::AppendMask(detail::MaskI64(x, lit, op),
                                     id_base + static_cast<uint32_t>(i), out,
                                     count);
        }
        break;
      }
      case DataType::kDouble: {
        __m256d lit = _mm256_set1_pd(DecodeDouble(literal));
        __m128i off = detail::StrideOffsets4(stride);
        for (; i + 4 <= n; i += 4) {
          __m256d x = _mm256_i32gather_pd(
              reinterpret_cast<const double*>(base + i * stride), off, 1);
          count = detail::AppendMask(detail::MaskF64(x, lit, op),
                                     id_base + static_cast<uint32_t>(i), out,
                                     count);
        }
        break;
      }
      case DataType::kString:
        break;  // memcmp path below
    }
  }
  count += scalar::FilterEncoded(type, width, base + i * stride, stride,
                                 n - i, literal, op,
                                 id_base + static_cast<uint32_t>(i),
                                 out + count);
  return count;
#else
  return scalar::FilterEncoded(type, width, base, stride, n, literal, op,
                               id_base, out);
#endif
}

/// See scalar::RefineEncoded.
inline void RefineEncoded(catalog::DataType type, uint32_t width,
                          const uint8_t* base, size_t stride, size_t n,
                          const uint8_t* literal, catalog::CompareOp op,
                          uint8_t* flags) {
#if GHOSTDB_SIMD_AVX2
  using catalog::DataType;
  size_t i = 0;
  if (stride <= (1u << 24)) {
    switch (type) {
      case DataType::kInt32: {
        __m256i lit = _mm256_set1_epi32(
            static_cast<int32_t>(DecodeFixed32(literal)));
        __m256i off = detail::StrideOffsets8(stride);
        for (; i + 8 <= n; i += 8) {
          __m256i x = _mm256_i32gather_epi32(
              reinterpret_cast<const int*>(base + i * stride), off, 1);
          uint32_t mask = detail::MaskI32(x, lit, op);
          for (uint32_t b = 0; b < 8; ++b) {
            flags[i + b] &= static_cast<uint8_t>((mask >> b) & 1u);
          }
        }
        break;
      }
      case DataType::kInt64: {
        __m256i lit = _mm256_set1_epi64x(
            static_cast<int64_t>(DecodeFixed64(literal)));
        __m128i off = detail::StrideOffsets4(stride);
        for (; i + 4 <= n; i += 4) {
          __m256i x = _mm256_i32gather_epi64(
              reinterpret_cast<const long long*>(base + i * stride), off, 1);
          uint32_t mask = detail::MaskI64(x, lit, op);
          for (uint32_t b = 0; b < 4; ++b) {
            flags[i + b] &= static_cast<uint8_t>((mask >> b) & 1u);
          }
        }
        break;
      }
      case DataType::kDouble: {
        __m256d lit = _mm256_set1_pd(DecodeDouble(literal));
        __m128i off = detail::StrideOffsets4(stride);
        for (; i + 4 <= n; i += 4) {
          __m256d x = _mm256_i32gather_pd(
              reinterpret_cast<const double*>(base + i * stride), off, 1);
          uint32_t mask = detail::MaskF64(x, lit, op);
          for (uint32_t b = 0; b < 4; ++b) {
            flags[i + b] &= static_cast<uint8_t>((mask >> b) & 1u);
          }
        }
        break;
      }
      case DataType::kString:
        break;
    }
  }
  scalar::RefineEncoded(type, width, base + i * stride, stride, n - i,
                        literal, op, flags + i);
#else
  scalar::RefineEncoded(type, width, base, stride, n, literal, op, flags);
#endif
}

/// See scalar::CompactFlags. `out` needs room for n ids.
inline size_t CompactFlags(const uint8_t* flags, size_t n, uint32_t id_base,
                           uint32_t* out) {
#if GHOSTDB_SIMD_AVX2
  size_t count = 0;
  size_t i = 0;
  __m256i zero = _mm256_setzero_si256();
  for (; i + 32 <= n; i += 32) {
    __m256i f = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(flags + i));
    // Set flags (0/1 bytes) -> per-byte 0xff via compare against zero.
    uint32_t mask = ~static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(f, zero)));
    count = detail::AppendMask(mask, id_base + static_cast<uint32_t>(i), out,
                               count);
  }
  count += scalar::CompactFlags(flags + i, n - i,
                                id_base + static_cast<uint32_t>(i),
                                out + count);
  return count;
#else
  return scalar::CompactFlags(flags, n, id_base, out);
#endif
}

/// See scalar::GatherCells. AVX2 vectorizes the 4/8-byte cell loads via
/// gathers; every source offset idx[j]*stride + offset + width must fit in
/// a signed 32-bit lane (callers check their partition byte size).
inline void GatherCells(const uint8_t* src, size_t stride, size_t offset,
                        uint32_t width, const uint32_t* idx, size_t n,
                        uint8_t* dst, size_t dst_stride) {
#if GHOSTDB_SIMD_AVX2
  size_t j = 0;
  if (width == 4 && stride <= (1u << 24)) {
    __m256i vstride = _mm256_set1_epi32(static_cast<int32_t>(stride));
    __m256i voffset = _mm256_set1_epi32(static_cast<int32_t>(offset));
    alignas(32) int32_t cells[8];
    for (; j + 8 <= n; j += 8) {
      __m256i vidx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(idx + j));
      __m256i off = _mm256_add_epi32(_mm256_mullo_epi32(vidx, vstride),
                                     voffset);
      __m256i x = _mm256_i32gather_epi32(
          reinterpret_cast<const int*>(src), off, 1);
      _mm256_store_si256(reinterpret_cast<__m256i*>(cells), x);
      for (int k = 0; k < 8; ++k) {
        std::memcpy(dst + (j + k) * dst_stride, &cells[k], 4);
      }
    }
  } else if (width == 8 && stride <= (1u << 24)) {
    __m128i vstride = _mm_set1_epi32(static_cast<int32_t>(stride));
    __m128i voffset = _mm_set1_epi32(static_cast<int32_t>(offset));
    alignas(32) int64_t cells[4];
    for (; j + 4 <= n; j += 4) {
      __m128i vidx = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(idx + j));
      __m128i off = _mm_add_epi32(_mm_mullo_epi32(vidx, vstride), voffset);
      __m256i x = _mm256_i32gather_epi64(
          reinterpret_cast<const long long*>(src), off, 1);
      _mm256_store_si256(reinterpret_cast<__m256i*>(cells), x);
      for (int k = 0; k < 4; ++k) {
        std::memcpy(dst + (j + k) * dst_stride, &cells[k], 8);
      }
    }
  }
  scalar::GatherCells(src, stride, offset, width, idx + j, n - j,
                      dst + j * dst_stride, dst_stride);
#else
  scalar::GatherCells(src, stride, offset, width, idx, n, dst, dst_stride);
#endif
}

}  // namespace ghostdb::exec::simd

#ifdef GHOSTDB_SIMD_DIAG_PUSHED
#pragma GCC diagnostic pop
#undef GHOSTDB_SIMD_DIAG_PUSHED
#endif

#include "exec/executor.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "device/guards.h"

namespace ghostdb::exec {

using sql::BoundQuery;

void EncodedRows::AppendRow(const ColumnBatch& batch,
                            uint32_t physical_row) {
  if (layout.cols.empty()) layout = *batch.layout;
  for (size_t c = 0; c < layout.cols.size(); ++c) {
    const uint8_t* src = batch.cell(c, physical_row);
    cells.insert(cells.end(), src, src + layout.cols[c].width);
  }
  if (!batch.seqs.empty()) seqs.push_back(batch.seqs[physical_row]);
  row_count += 1;
}

EncodedRows MergeEncodedRowsBySeq(std::vector<EncodedRows> parts) {
  EncodedRows out;
  std::vector<uint64_t> cursor(parts.size(), 0);
  for (const EncodedRows& p : parts) {
    if (out.layout.cols.empty() && !p.layout.cols.empty()) {
      out.layout = p.layout;
    }
    out.cells.reserve(out.cells.size() + p.cells.size());
  }
  while (true) {
    int best = -1;
    for (size_t i = 0; i < parts.size(); ++i) {
      if (cursor[i] >= parts[i].row_count) continue;
      if (best < 0 ||
          parts[i].seqs[cursor[i]] < parts[best].seqs[cursor[best]]) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    const EncodedRows& p = parts[best];
    const uint8_t* src =
        p.cells.data() +
        static_cast<size_t>(cursor[best]) * p.layout.row_width;
    out.cells.insert(out.cells.end(), src, src + p.layout.row_width);
    out.row_count += 1;
    cursor[best] += 1;
  }
  return out;
}

int FindFanoutBoundary(const plan::PhysicalPlan& plan) {
  int project = -1;
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    switch (plan.nodes[i].op) {
      case plan::PhysicalOp::kAggregate:
      case plan::PhysicalOp::kGroupAggregate:
        return static_cast<int>(i);
      case plan::PhysicalOp::kProject:
      case plan::PhysicalOp::kBruteForceProject:
        project = static_cast<int>(i);
        break;
      default:
        break;
    }
  }
  return project;
}

void EncodedRows::DecodeInto(QueryResult* out) const {
  out->rows.reserve(out->rows.size() + row_count);
  const uint8_t* p = cells.data();
  for (uint64_t r = 0; r < row_count; ++r) {
    std::vector<catalog::Value> row;
    row.reserve(layout.cols.size());
    for (const BatchColumn& col : layout.cols) {
      row.push_back(catalog::Value::Decode(p, col.type, col.width));
      p += col.width;
    }
    out->rows.push_back(std::move(row));
  }
}

Result<QueryResult> SecureExecutor::Execute(const BoundQuery& query,
                                            const plan::PlanChoice& choice,
                                            const MetricSnapshot* baseline,
                                            const SessionBinding* session) {
  return Execute(
      query,
      plan::BuildPhysicalPlan(query, choice, config_.topk_fusion,
                              config_.volume_padding != VolumePadding::kOff),
      baseline, session);
}

Result<QueryResult> SecureExecutor::Execute(const BoundQuery& query,
                                            const plan::PhysicalPlan& plan,
                                            const MetricSnapshot* baseline,
                                            const SessionBinding* session,
                                            EncodedRows* deferred,
                                            untrusted::VisPrefetch* prefetch,
                                            const FanoutParams* fanout) {
  static const SessionBinding kMainSession;
  if (session == nullptr) session = &kMainSession;
  auto& ram = device_->ram();
  // Context-switch the RAM budget onto the session's partition: every
  // operator acquisition below is charged against the session's quota, and
  // the adaptive operators see only the session's headroom.
  device::RamManager::PartitionScope partition_scope(&ram,
                                                     session->ram_partition);
  Result<QueryResult> result =
      ExecuteTree(query, plan, baseline, session, deferred, prefetch, fanout);
  if (!result.ok() && result.status().IsResourceExhausted()) {
    // Out-of-RAM is a per-session condition under partitioning: annotate
    // the operator's error with whose budget ran dry and what it was, so
    // "zero buffers free" becomes actionable.
    return Status::ResourceExhausted(
        result.status().message() + " [session '" + session->name +
        "', RAM partition '" + ram.partition_name(session->ram_partition) +
        "': " + std::to_string(ram.partition_used(session->ram_partition)) +
        " used of quota " +
        std::to_string(ram.partition_quota(session->ram_partition)) +
        ", shared reserve " +
        std::to_string(ram.reserve_free_buffers()) + " free]");
  }
  return result;
}

Result<QueryResult> SecureExecutor::ExecuteTree(
    const BoundQuery& query, const plan::PhysicalPlan& plan,
    const MetricSnapshot* baseline, const SessionBinding* session,
    EncodedRows* deferred, untrusted::VisPrefetch* prefetch,
    const FanoutParams* fanout) {
  bool scatter =
      fanout != nullptr && fanout->role == FanoutParams::Role::kScatter;
  bool gather =
      fanout != nullptr && fanout->role == FanoutParams::Role::kGather;
  auto& ram = device_->ram();
  MetricSnapshot snap =
      baseline != nullptr ? *baseline : MetricSnapshot::Take(device_);
  uint32_t pages0 = allocator_->used_pages();
  {
    // Pre-flight probe against the session's RAM partition: a session whose
    // quota is already exhausted (a leaked handle, a runaway concurrent
    // query) fails here with a crisp error instead of half-opening the
    // operator tree. The guard returns the buffer before anything runs.
    GHOSTDB_ASSIGN_OR_RETURN(
        device::RamGuard preflight,
        device::RamGuard::AcquireOne(&ram, "exec-preflight"));
    (void)preflight;
  }
  ram.ResetPeak();

  QueryMetrics metrics;
  ExecContext ctx;
  ctx.device = device_;
  ctx.allocator = allocator_;
  ctx.schema = schema_;
  ctx.store = store_;
  ctx.untrusted = untrusted_;
  ctx.config = &config_;
  ctx.query = &query;
  ctx.choice = &plan.choice;
  ctx.session = session;
  ctx.vis_prefetch = prefetch;
  ctx.metrics = &metrics;
  // Morsel parallelism: the plan may clamp the degree (0 = use the pool's
  // full width). Workers do pure host-side value compute only, so the
  // degree is invisible to the transcript.
  ctx.pool = pool_;
  uint32_t pool_width = pool_ != nullptr ? pool_->width() : 1;
  ctx.parallelism = plan.parallelism != 0
                        ? std::min(plan.parallelism, pool_width)
                        : pool_width;
  // Without value-level operators above the projection, rows beyond the
  // materialization limit are counted but never encoded.
  bool needs_all_values = query.HasAggregates() || query.grouped() ||
                          query.distinct || !query.order_by.empty() ||
                          query.limit.has_value();
  ctx.rows_demanded =
      needs_all_values ? UINT64_MAX : config_.result_row_limit;
  // How many rows this run may materialize (render or defer). Scatter legs
  // whose tail operators reorder or cut the stream (DISTINCT / ORDER BY /
  // LIMIT) must ship *every* local row to the gather merge, so the
  // per-shard cap lifts; plain scans keep it — any row of the global
  // first-L prefix lies within its own shard's first-L, so per-shard
  // prefix materialization plus skip counting reconstructs the answer.
  uint64_t materialize_cap = config_.result_row_limit;
  if (scatter) {
    ctx.emit_row_seq = true;
    ctx.partials_out = fanout->partials_out;
    if (fanout->partials_out == nullptr && needs_all_values) {
      materialize_cap = UINT64_MAX;
    }
  }
  if (gather) {
    ctx.gather_partials = fanout->gather_partials;
    ctx.gather_rows = fanout->gather_rows;
  }
  // Planner-sized batches + cached layout; pinned plans lowered without a
  // planner fall back to computing both here (same pure function of the
  // visible shape).
  BatchLayout pinned_layout;
  if (plan.batch_rows != 0) {
    ctx.value_layout = &plan.value_layout;
    ctx.batch_rows = plan.batch_rows;
  } else {
    pinned_layout = BatchLayout::Projection(*schema_, query);
    ctx.value_layout = &pinned_layout;
    ctx.batch_rows = SizeBatchRows(pinned_layout, config_);
  }
  // Relational-tail budget: the working set Sort/Distinct/top-K may hold
  // in secure memory before spilling. Config override, else the session's
  // RAM partition — both visible inputs, so two databases differing only
  // in hidden data compute identical budgets (spill *timing* then depends
  // only on arrived row counts, which never touch the channel).
  {
    uint32_t budget_buffers =
        config_.sort_budget_buffers != 0
            ? config_.sort_budget_buffers
            : ram.partition_budget_buffers(session->ram_partition);
    ctx.sort_budget_bytes =
        static_cast<size_t>(std::max<uint32_t>(1, budget_buffers)) *
        ram.buffer_size();
  }
  // When LIMIT pulls straight from the projection (no blocking operator
  // between), batches larger than the limit only make the projection
  // overshoot before the pull stops — cap at the live literal. This must
  // happen here, not in the cached plan: shapes normalize the LIMIT count.
  bool limit_above_project = query.limit.has_value() &&
                             !query.HasAggregates() && !query.grouped() &&
                             !query.distinct && query.order_by.empty();
  if (limit_above_project && *query.limit < ctx.batch_rows) {
    ctx.batch_rows =
        std::max<uint32_t>(1, static_cast<uint32_t>(*query.limit));
  }
  // Volume defense: the padding operators target the visible worst case —
  // one result row per anchor-table row (metadata, identical across hidden
  // variants, same bound PostSelect already relies on).
  if (config_.volume_padding != VolumePadding::kOff) {
    ctx.padding_row_bound = store_->tables[query.anchor].row_count;
    // Gather legs pad against the fleet-wide anchor row count, not the
    // gather shard's local slice — the observed volume must be
    // byte-identical across shard counts.
    if (gather && fanout->padding_row_bound_override != 0) {
      ctx.padding_row_bound = fanout->padding_row_bound_override;
    }
  }

  // Scatter legs execute only the subtree at/below the fan-out boundary;
  // the tail above it runs once on the gather device over the merged
  // stream, where its arrival-order tie-breaks see the exact row order a
  // single unsharded device would have produced.
  const plan::PhysicalPlan* exec_plan = &plan;
  plan::PhysicalPlan scatter_plan;
  if (scatter) {
    int boundary = FindFanoutBoundary(plan);
    if (boundary < 0) {
      return Status::Internal("scatter plan has no fan-out boundary");
    }
    scatter_plan = plan;
    scatter_plan.root = boundary;
    exec_plan = &scatter_plan;
  }

  QueryResult result;
  for (const auto& c : query.select) result.columns.push_back(c.display);

  // Build + open + pull in a scope whose failure still reaches the cleanup
  // below: whatever the query did before faulting — opened operators,
  // spilled runs, the F' run, VisTable state — must be released, and the
  // page-leak check must run, on the error path too.
  std::unique_ptr<Operator> root;
  Status run_status = [&]() -> Status {
    GHOSTDB_ASSIGN_OR_RETURN(root, BuildOperatorTree(&ctx, *exec_plan));
    GHOSTDB_RETURN_NOT_OK(root->Open());
    metrics.qepsj_rows = ctx.pipeline.sj.rows;
    while (true) {
      GHOSTDB_ASSIGN_OR_RETURN(ColumnBatch batch, root->Next());
      if (batch.empty()) break;
      if (batch.padding_rows > 0) {
        // The QueryResult boundary strips volume-padding dummies: they
        // count toward the observed volume only, never toward the answer,
        // and are never materialized or deferred.
        metrics.padding_rows += batch.padding_rows;
        continue;
      }
      result.total_rows += batch.live() + batch.skipped_rows;
      // The secure rendering surface. In deferred mode only the encoded
      // cells are captured (memcpy) — the caller decodes after releasing
      // its channel admission, off the device's critical section.
      for (size_t i = 0; i < batch.live(); ++i) {
        uint64_t materialized =
            deferred != nullptr ? deferred->row_count : result.rows.size();
        if (materialized >= materialize_cap) break;
        uint32_t r = batch.row_at(i);
        if (deferred != nullptr) {
          deferred->AppendRow(batch, r);
          continue;
        }
        std::vector<catalog::Value> row;
        row.reserve(batch.layout->cols.size());
        for (size_t c = 0; c < batch.layout->cols.size(); ++c) {
          row.push_back(batch.DecodeCell(c, r));
        }
        result.rows.push_back(std::move(row));
      }
    }
    return Status::OK();
  }();

  Status close_status;
  if (root != nullptr) {
    close_status = root->Close();
    root.reset();
  }
  ctx.pipeline.vis_tables.clear();
  // Reclaim the pipeline's materialized F' run through page guards: every
  // extent is adopted before any is freed, so one failing Free cannot
  // strand the remaining extents (the guards' destructors return them).
  Status free_status;
  {
    const storage::RunRef& fprime = ctx.pipeline.sj.fprime;
    const std::string& ftag = fprime.tag.empty() ? "fprime" : fprime.tag;
    std::vector<device::PageGuard> fprime_pages;
    fprime_pages.reserve(fprime.extents.size());
    for (const auto& e : fprime.extents) {
      fprime_pages.push_back(
          device::PageGuard::Adopt(allocator_, e.first, e.second, ftag));
    }
    for (auto& guard : fprime_pages) {
      Status s = guard.Free();
      if (free_status.ok() && !s.ok()) free_status = s;
    }
  }
  if (run_status.ok()) {
    GHOSTDB_RETURN_NOT_OK(close_status);
    GHOSTDB_RETURN_NOT_OK(free_status);
  }

  snap.Delta(device_, &metrics);
  metrics.peak_ram_buffers = ram.peak_used_buffers();
  metrics.result_rows = result.total_rows;
  metrics.observed_volume = result.total_rows + metrics.padding_rows;

  // Temporary flash space must all be returned: leaks here would slowly
  // fill the key — after a fault just as much as after a success. The
  // check runs per session-query so a leak is pinned on the session that
  // caused it, not on whoever runs next.
  if (allocator_->used_pages() != pages0) {
    std::string leak = "query leaked " +
                       std::to_string(allocator_->used_pages() - pages0) +
                       " flash pages (session '" + session->name + "')";
    if (!run_status.ok()) {
      leak += " while failing with: " + run_status.ToString();
    }
    return Status::Internal(std::move(leak));
  }
  GHOSTDB_RETURN_NOT_OK(run_status);
  result.metrics = metrics;
  return result;
}

}  // namespace ghostdb::exec

#include "exec/executor.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "common/coding.h"
#include "exec/id_source.h"
#include "exec/row_run.h"
#include "exec/sjoin.h"
#include "storage/fixed_table.h"

namespace ghostdb::exec {

using catalog::ColumnId;
using catalog::RowId;
using catalog::TableId;
using catalog::Value;
using plan::ProjectAlgo;
using plan::VisStrategy;
using sql::BoundPredicate;
using sql::BoundQuery;

namespace {

/// Merges row runs (sorted, disjoint leading-u32 keys) into one run.
Status MergeRowRuns(flash::FlashDevice* device, device::RamManager* ram,
                    storage::PageAllocator* allocator,
                    std::vector<storage::RunRef>* runs, uint32_t width,
                    size_t target_count, const std::string& tag) {
  while (runs->size() > target_count) {
    uint32_t free = ram->free_buffers();
    if (free < 3) {
      return Status::ResourceExhausted("row-run merge needs 3 buffers");
    }
    size_t take = std::min<size_t>(free - 1, runs->size());
    GHOSTDB_ASSIGN_OR_RETURN(
        device::BufferHandle bufs,
        ram->Acquire(static_cast<uint32_t>(take) + 1, "rowrun-merge"));
    std::vector<std::unique_ptr<RowRunReader>> readers;
    for (size_t i = 0; i < take; ++i) {
      readers.push_back(std::make_unique<RowRunReader>(
          device, (*runs)[i], width, bufs.data() + i * ram->buffer_size()));
      GHOSTDB_RETURN_NOT_OK(readers.back()->Prime());
    }
    storage::RunWriter writer(device, allocator,
                              bufs.data() + take * ram->buffer_size(), tag);
    while (true) {
      RowRunReader* best = nullptr;
      for (auto& r : readers) {
        if (r->valid() && (best == nullptr || r->key() < best->key())) {
          best = r.get();
        }
      }
      if (best == nullptr) break;
      GHOSTDB_RETURN_NOT_OK(writer.Append(best->row(), width));
      GHOSTDB_RETURN_NOT_OK(best->Advance());
    }
    GHOSTDB_ASSIGN_OR_RETURN(storage::RunRef merged, writer.Finish());
    for (size_t i = 0; i < take; ++i) {
      GHOSTDB_RETURN_NOT_OK(storage::FreeRun(allocator, (*runs)[i], tag));
    }
    runs->erase(runs->begin(), runs->begin() + static_cast<long>(take));
    runs->push_back(std::move(merged));
  }
  return Status::OK();
}

}  // namespace

std::optional<uint32_t> SecureExecutor::SjResult::ColumnOffset(
    TableId t, TableId anchor) const {
  if (t == anchor) return 0u;
  for (uint32_t i = 0; i < column_tables.size(); ++i) {
    if (column_tables[i] == t) return 4 + 4 * i;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// QEP_SJ
// ---------------------------------------------------------------------------

Status SecureExecutor::CollectPredicateSublists(const BoundPredicate& pred,
                                                TableId target,
                                                MergeGroup* group) {
  const core::TableImage& image = store_->tables[pred.table];
  auto it = image.attr_indexes.find(pred.column);
  if (it == image.attr_indexes.end()) {
    // No climbing index on this attribute: fall back to a hidden-image scan
    // (ids of pred.table), then climb if needed.
    GHOSTDB_ASSIGN_OR_RETURN(std::vector<RowId> ids,
                             ScanHiddenPredicate(pred));
    if (pred.table == target) {
      group->ram_ids = std::move(ids);
      group->has_ram_ids = true;
      return Status::OK();
    }
    return ClimbIntoGroup(pred.table, target, ids, group);
  }
  const storage::BTreeRef& index = it->second;
  if (!config_.climbing_enabled && target != pred.table) {
    // Cascading baseline: resolve the selection at the self level, then
    // climb id by id through the id indexes.
    MergeGroup self_group;
    GHOSTDB_RETURN_NOT_OK(
        CollectPredicateSublists(pred, pred.table, &self_group));
    std::vector<RowId> ids;
    {
      GHOSTDB_ASSIGN_OR_RETURN(device::BufferHandle buf,
                               device_->ram().AcquireOne("cascade"));
      for (const auto& [area, range] : self_group.sublists) {
        storage::PostingCursor cursor(&device_->flash(), area, range,
                                      buf.data());
        GHOSTDB_RETURN_NOT_OK(cursor.Prime());
        while (cursor.valid()) {
          ids.push_back(cursor.head());
          GHOSTDB_RETURN_NOT_OK(cursor.Advance());
        }
      }
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    }
    return ClimbIntoGroup(pred.table, target, ids, group);
  }
  GHOSTDB_ASSIGN_OR_RETURN(
      uint32_t level,
      core::SecureStore::LevelFor(*schema_, pred.table, target,
                                  /*self_level=*/true));
  GHOSTDB_ASSIGN_OR_RETURN(
      auto reader,
      storage::BTreeReader::Open(&device_->flash(), &device_->ram(),
                                 &index));
  auto push_current = [&]() -> Status {
    GHOSTDB_ASSIGN_OR_RETURN(storage::BTreeEntry entry, reader->Current());
    if (entry.ranges[level].count > 0) {
      group->sublists.emplace_back(&index.postings[level],
                                   entry.ranges[level]);
    }
    return Status::OK();
  };

  switch (pred.op) {
    case catalog::CompareOp::kEq: {
      GHOSTDB_ASSIGN_OR_RETURN(bool found,
                               reader->SeekLowerBound(pred.value));
      if (!found) return Status::OK();
      GHOSTDB_ASSIGN_OR_RETURN(storage::BTreeEntry entry, reader->Current());
      if (entry.key == pred.value) {
        GHOSTDB_RETURN_NOT_OK(push_current());
      }
      return Status::OK();
    }
    case catalog::CompareOp::kGe:
    case catalog::CompareOp::kGt: {
      GHOSTDB_ASSIGN_OR_RETURN(bool found,
                               reader->SeekLowerBound(pred.value));
      if (!found) return Status::OK();
      while (true) {
        GHOSTDB_ASSIGN_OR_RETURN(storage::BTreeEntry entry,
                                 reader->Current());
        if (!(pred.op == catalog::CompareOp::kGt &&
              entry.key == pred.value)) {
          GHOSTDB_RETURN_NOT_OK(push_current());
        }
        GHOSTDB_ASSIGN_OR_RETURN(bool more, reader->Next());
        if (!more) break;
      }
      return Status::OK();
    }
    case catalog::CompareOp::kLt:
    case catalog::CompareOp::kLe:
    case catalog::CompareOp::kNe: {
      GHOSTDB_ASSIGN_OR_RETURN(bool found, reader->SeekToFirst());
      if (!found) return Status::OK();
      while (true) {
        GHOSTDB_ASSIGN_OR_RETURN(storage::BTreeEntry entry,
                                 reader->Current());
        int cmp = entry.key.Compare(pred.value);
        if (pred.op == catalog::CompareOp::kLt && cmp >= 0) break;
        if (pred.op == catalog::CompareOp::kLe && cmp > 0) break;
        if (!(pred.op == catalog::CompareOp::kNe && cmp == 0)) {
          GHOSTDB_RETURN_NOT_OK(push_current());
        }
        GHOSTDB_ASSIGN_OR_RETURN(bool more, reader->Next());
        if (!more) break;
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled predicate operator");
}

Status SecureExecutor::ClimbIntoGroup(TableId from, TableId to,
                                      const std::vector<RowId>& ids,
                                      MergeGroup* group) {
  if (from == to) {
    group->ram_ids = ids;
    group->has_ram_ids = true;
    return Status::OK();
  }
  const core::TableImage& image = store_->tables[from];
  if (!image.id_index.has_value()) {
    return Status::Internal("missing id index on " +
                            schema_->table(from).name);
  }
  GHOSTDB_ASSIGN_OR_RETURN(
      uint32_t level,
      core::SecureStore::LevelFor(*schema_, from, to, /*self_level=*/false));
  GHOSTDB_ASSIGN_OR_RETURN(
      auto reader,
      storage::BTreeReader::Open(&device_->flash(), &device_->ram(),
                                 &image.id_index.value()));
  for (RowId id : ids) {
    GHOSTDB_ASSIGN_OR_RETURN(
        bool found,
        reader->SeekLowerBound(Value::Int32(static_cast<int32_t>(id))));
    if (!found) continue;
    GHOSTDB_ASSIGN_OR_RETURN(storage::BTreeEntry entry, reader->Current());
    if (entry.key.AsInt32() != static_cast<int32_t>(id)) continue;
    if (entry.ranges[level].count > 0) {
      group->sublists.emplace_back(&image.id_index->postings[level],
                                   entry.ranges[level]);
    }
  }
  return Status::OK();
}

Result<std::vector<RowId>> SecureExecutor::ScanHiddenPredicate(
    const BoundPredicate& pred) {
  const core::TableImage& image = store_->tables[pred.table];
  if (!image.hidden_image.has_value()) {
    return Status::Internal("hidden predicate on table without hidden image");
  }
  const auto& col = schema_->table(pred.table).columns[pred.column];
  uint32_t offset = image.hidden_offsets[pred.column];
  GHOSTDB_ASSIGN_OR_RETURN(device::BufferHandle buf,
                           device_->ram().AcquireOne("hidden-scan"));
  storage::FixedTableReader reader(&device_->flash(),
                                   image.hidden_image.value(), buf.data());
  std::vector<uint8_t> row(image.hidden_image->row_width);
  std::vector<RowId> out;
  for (RowId r = 0; r < image.row_count; ++r) {
    GHOSTDB_RETURN_NOT_OK(reader.ReadRow(r, row.data()));
    Value v = Value::Decode(row.data() + offset, col.type, col.width);
    if (catalog::EvalCompare(v, pred.op, pred.value)) out.push_back(r);
  }
  return out;
}

Result<SecureExecutor::SjResult> SecureExecutor::RunQepSj(
    const BoundQuery& query, std::vector<VisTable>* vis_tables,
    QueryMetrics* metrics) {
  TableId anchor = query.anchor;
  const core::TableImage& anchor_image = store_->tables[anchor];
  auto& ram = device_->ram();
  auto& clock = device_->clock();

  // Collect hidden predicates with fold bookkeeping.
  std::vector<const BoundPredicate*> hidden_preds;
  for (const auto& p : query.predicates) {
    if (p.hidden && !p.on_id) hidden_preds.push_back(&p);
  }
  std::vector<bool> folded(hidden_preds.size(), false);

  // Hidden predicates in the subtree of `t` (by index into hidden_preds).
  auto subtree_preds = [&](TableId t) {
    std::vector<size_t> out;
    for (size_t i = 0; i < hidden_preds.size(); ++i) {
      if (schema_->IsAncestorOrSelf(hidden_preds[i]->table, t)) {
        out.push_back(i);
      }
    }
    return out;
  };

  // Runs the Ti-level cross intersection: Vis(Ti) ∩ hidden selections in
  // Ti's subtree, producing a sorted id list of Ti.
  auto cross_intersect = [&](VisTable& vt,
                             const std::vector<size_t>& preds,
                             std::vector<RowId>* out) -> Status {
    std::vector<MergeGroup> groups;
    MergeGroup vis_group;
    vis_group.ram_ids = vt.ids;
    vis_group.has_ram_ids = true;
    groups.push_back(std::move(vis_group));
    for (size_t pi : preds) {
      MergeGroup g;
      GHOSTDB_RETURN_NOT_OK(
          CollectPredicateSublists(*hidden_preds[pi], vt.table, &g));
      groups.push_back(std::move(g));
    }
    MergeExec merge(&device_->flash(), &ram, allocator_, &clock,
                    config_.merge_policy);
    auto scope = clock.Enter("merge");
    GHOSTDB_RETURN_NOT_OK(merge.Run(
        std::move(groups),
        [&](RowId id) {
          out->push_back(id);
          return Status::OK();
        },
        /*reserve_buffers=*/0));
    metrics->merge.reduction_rounds += merge.stats().reduction_rounds;
    metrics->merge.reduction_ids_written +=
        merge.stats().reduction_ids_written;
    return Status::OK();
  };

  std::vector<MergeGroup> anchor_groups;

  // Visible-strategy handling.
  for (auto& vt : *vis_tables) {
    std::vector<size_t> foldable = subtree_preds(vt.table);
    bool can_cross = !foldable.empty();
    VisStrategy strategy = vt.strategy;
    if (!can_cross && strategy == VisStrategy::kCrossPreFilter) {
      strategy = VisStrategy::kPreFilter;
    }
    if (!can_cross && strategy == VisStrategy::kCrossPostFilter) {
      strategy = VisStrategy::kPostFilter;
    }
    if (!can_cross && strategy == VisStrategy::kCrossPostSelect) {
      strategy = VisStrategy::kPostSelect;
    }
    switch (strategy) {
      case VisStrategy::kPreFilter: {
        MergeGroup g;
        GHOSTDB_RETURN_NOT_OK(
            ClimbIntoGroup(vt.table, anchor, vt.ids, &g));
        anchor_groups.push_back(std::move(g));
        break;
      }
      case VisStrategy::kCrossPreFilter: {
        std::vector<RowId> L;
        GHOSTDB_RETURN_NOT_OK(cross_intersect(vt, foldable, &L));
        for (size_t pi : foldable) folded[pi] = true;
        MergeGroup g;
        GHOSTDB_RETURN_NOT_OK(ClimbIntoGroup(vt.table, anchor, L, &g));
        anchor_groups.push_back(std::move(g));
        break;
      }
      case VisStrategy::kPostFilter:
      case VisStrategy::kCrossPostFilter: {
        std::vector<RowId> basis;
        if (strategy == VisStrategy::kCrossPostFilter) {
          GHOSTDB_RETURN_NOT_OK(cross_intersect(vt, foldable, &basis));
        } else {
          basis = vt.ids;
        }
        // Feasibility: enough RAM for an effective filter?
        uint32_t max_buffers = std::min<uint32_t>(
            config_.bloom_max_buffers,
            ram.free_buffers() > 8 ? ram.free_buffers() - 8 : 1);
        double achievable_bpe =
            basis.empty()
                ? 8.0
                : static_cast<double>(max_buffers) * ram.buffer_size() * 8 /
                      static_cast<double>(basis.size());
        achievable_bpe = std::min(achievable_bpe, config_.bloom_target_bpe);
        if (achievable_bpe < config_.bloom_min_bpe) {
          // The filter would pass more noise than signal: postpone the
          // selection to projection time (paper Fig 10).
          vt.need_exact_at_projection = true;
          break;
        }
        GHOSTDB_ASSIGN_OR_RETURN(
            BloomFilter bloom,
            BloomFilter::Create(&ram, basis.size(), max_buffers,
                                config_.bloom_target_bpe));
        for (RowId id : basis) bloom.Insert(id);
        metrics->bloom_fpr_estimate = std::max(
            metrics->bloom_fpr_estimate, bloom.EstimatedFpr(basis.size()));
        vt.bloom.emplace(std::move(bloom));
        vt.need_exact_at_projection = true;  // bloom passes false positives
        break;
      }
      case VisStrategy::kPostSelect:
      case VisStrategy::kCrossPostSelect:
        vt.post_select = true;
        if (strategy == VisStrategy::kCrossPostSelect && can_cross) {
          // Intersect first: the in-RAM id set shrinks, so the exact
          // selection needs fewer chunks/passes over F'. Still exact: F'
          // rows already satisfy the folded hidden predicates.
          std::vector<RowId> basis;
          GHOSTDB_RETURN_NOT_OK(cross_intersect(vt, foldable, &basis));
          vt.ids = std::move(basis);
        }
        break;
      case VisStrategy::kNoFilter:
        vt.need_exact_at_projection = true;
        break;
    }
  }

  // Unfolded hidden predicates contribute anchor-level groups.
  for (size_t i = 0; i < hidden_preds.size(); ++i) {
    if (folded[i]) continue;
    MergeGroup g;
    GHOSTDB_RETURN_NOT_OK(
        CollectPredicateSublists(*hidden_preds[i], anchor, &g));
    anchor_groups.push_back(std::move(g));
  }

  if (anchor_groups.empty()) {
    MergeGroup g;
    g.has_iota = true;
    g.iota_n = static_cast<RowId>(anchor_image.row_count);
    anchor_groups.push_back(std::move(g));
  }

  // Which non-anchor tables need id columns in F'.
  SjResult sj;
  {
    std::set<TableId> cols;
    for (TableId t : query.tables) {
      if (t == anchor) continue;
      if (query.ProjectsTable(t)) cols.insert(t);
    }
    for (auto& vt : *vis_tables) {
      if (vt.table == anchor) continue;
      if (vt.bloom.has_value() || vt.post_select ||
          vt.need_exact_at_projection) {
        cols.insert(vt.table);
      }
    }
    sj.column_tables.assign(cols.begin(), cols.end());
  }
  sj.row_width = 4 + 4 * static_cast<uint32_t>(sj.column_tables.size());
  bool need_sjoin = !sj.column_tables.empty();

  // Probe offsets for bloom-filtered tables.
  for (auto& vt : *vis_tables) {
    if (!vt.bloom.has_value()) continue;
    auto off = sj.ColumnOffset(vt.table, anchor);
    if (!off.has_value()) {
      return Status::Internal("bloom table missing from F' columns");
    }
    vt.probe_offset = *off;
  }

  GHOSTDB_ASSIGN_OR_RETURN(device::BufferHandle out_buf,
                           ram.AcquireOne("fprime-writer"));
  storage::RunWriter writer(&device_->flash(), allocator_, out_buf.data(),
                            "fprime");

  MergeExec merge(&device_->flash(), &ram, allocator_, &clock,
                  config_.merge_policy);

  if (need_sjoin) {
    if (!anchor_image.skt.has_value()) {
      return Status::Internal("anchor table has no SKT");
    }
    std::vector<uint32_t> slots;
    for (TableId t : sj.column_tables) {
      auto slot = anchor_image.SktSlotOf(t);
      if (!slot.has_value()) {
        return Status::Internal("table missing from anchor SKT");
      }
      slots.push_back(*slot);
    }
    GHOSTDB_ASSIGN_OR_RETURN(device::BufferHandle skt_buf,
                             ram.AcquireOne("sjoin-skt"));
    SJoinStage sjoin(
        &device_->flash(), &anchor_image.skt.value(), slots, skt_buf.data(),
        [&](const uint8_t* row, uint32_t width) -> Status {
          // ProbeBF stages, pipelined.
          for (auto& vt : *vis_tables) {
            if (vt.bloom.has_value() &&
                !vt.bloom->MightContain(
                    DecodeFixed32(row + vt.probe_offset))) {
              return Status::OK();
            }
          }
          auto store_scope = clock.Enter("store");
          sj.rows += 1;
          return writer.Append(row, width);
        });
    {
      auto merge_scope = clock.Enter("merge");
      GHOSTDB_RETURN_NOT_OK(merge.Run(
          std::move(anchor_groups),
          [&](RowId id) {
            auto sjoin_scope = clock.Enter("sjoin");
            return sjoin.Consume(id);
          },
          /*reserve_buffers=*/0));
    }
  } else {
    auto merge_scope = clock.Enter("merge");
    GHOSTDB_RETURN_NOT_OK(merge.Run(
        std::move(anchor_groups),
        [&](RowId id) {
          sj.rows += 1;
          uint8_t enc[4];
          EncodeFixed32(enc, id);
          return writer.Append(enc, 4);
        },
        /*reserve_buffers=*/0));
  }
  metrics->merge.ids_emitted += merge.stats().ids_emitted;
  metrics->merge.reduction_rounds += merge.stats().reduction_rounds;
  metrics->merge.reduction_ids_written += merge.stats().reduction_ids_written;
  metrics->merge.peak_streams =
      std::max(metrics->merge.peak_streams, merge.stats().peak_streams);
  GHOSTDB_ASSIGN_OR_RETURN(sj.fprime, writer.Finish());
  out_buf.Release();

  // Release QEP_SJ blooms: projection rebuilds its own (paper section 5).
  for (auto& vt : *vis_tables) vt.bloom.reset();

  // Exact Post-Select passes.
  for (auto& vt : *vis_tables) {
    if (!vt.post_select) continue;
    auto off = sj.ColumnOffset(vt.table, anchor);
    if (!off.has_value()) {
      return Status::Internal("post-select table missing from F'");
    }
    auto scope = clock.Enter("post-select");
    GHOSTDB_ASSIGN_OR_RETURN(SjResult filtered,
                             PostSelectFilter(sj, *off, vt.ids));
    filtered.column_tables = sj.column_tables;
    filtered.row_width = sj.row_width;
    GHOSTDB_RETURN_NOT_OK(
        storage::FreeRun(allocator_, sj.fprime, "fprime"));
    sj.fprime = std::move(filtered.fprime);
    sj.rows = filtered.rows;
  }
  return sj;
}

Result<SecureExecutor::SjResult> SecureExecutor::PostSelectFilter(
    const SjResult& sj, uint32_t probe_offset,
    const std::vector<RowId>& ids) {
  auto& ram = device_->ram();
  // Chunked exact filtering: load as many probe ids into RAM as fit, scan
  // F' per chunk, merge the per-chunk outputs back into anchor-id order.
  uint32_t free = ram.free_buffers();
  if (free < 4) {
    return Status::ResourceExhausted("post-select needs 4 buffers");
  }
  GHOSTDB_ASSIGN_OR_RETURN(device::BufferHandle chunk_buf,
                           ram.Acquire(free - 3, "post-select-chunk"));
  size_t chunk_capacity = chunk_buf.size() / 4;
  GHOSTDB_ASSIGN_OR_RETURN(device::BufferHandle io_bufs,
                           ram.Acquire(2, "post-select-io"));

  std::vector<storage::RunRef> chunk_runs;
  uint64_t kept = 0;
  for (size_t base = 0; base < std::max<size_t>(ids.size(), 1);
       base += chunk_capacity) {
    size_t end = std::min(ids.size(), base + chunk_capacity);
    RowRunReader reader(&device_->flash(), sj.fprime, sj.row_width,
                        io_bufs.data());
    GHOSTDB_RETURN_NOT_OK(reader.Prime());
    storage::RunWriter writer(&device_->flash(), allocator_,
                              io_bufs.data() + ram.buffer_size(), "fprime");
    while (reader.valid()) {
      RowId probe = DecodeFixed32(reader.row() + probe_offset);
      bool hit = std::binary_search(ids.begin() + static_cast<long>(base),
                                    ids.begin() + static_cast<long>(end),
                                    probe);
      if (hit) {
        GHOSTDB_RETURN_NOT_OK(writer.Append(reader.row(), sj.row_width));
        kept += 1;
      }
      GHOSTDB_RETURN_NOT_OK(reader.Advance());
    }
    GHOSTDB_ASSIGN_OR_RETURN(storage::RunRef run, writer.Finish());
    chunk_runs.push_back(std::move(run));
    if (ids.empty()) break;
  }
  chunk_buf.Release();
  io_bufs.Release();
  GHOSTDB_RETURN_NOT_OK(MergeRowRuns(&device_->flash(), &ram, allocator_,
                                     &chunk_runs, sj.row_width, 1,
                                     "fprime"));
  SjResult out;
  out.fprime = chunk_runs.empty() ? storage::RunRef{} : chunk_runs[0];
  out.rows = kept;
  return out;
}

// ---------------------------------------------------------------------------
// QEP_P: the section 4 Project algorithm (and its NoBF ablation)
// ---------------------------------------------------------------------------

namespace {

/// Per-table MJoin state and outputs.
struct MJoinTable {
  TableId table;
  std::vector<ColumnId> vis_cols;
  std::vector<ColumnId> hid_cols;
  uint32_t vis_width = 0;
  uint32_t hid_width = 0;
  uint32_t out_width = 4;  ///< pos + vis + hid
  bool has_vis_side = false;
  storage::RunRef column_run;              ///< Ti ids in pos order
  std::vector<storage::RunRef> pass_runs;  ///< <pos, vlist, hlist> per pass
  untrusted::ProjectionPayload payload;    ///< Vis values (sorted by id)
};

}  // namespace

Status SecureExecutor::FoldOrEmit(const BoundQuery& query,
                                  std::vector<Value> row,
                                  QueryResult* result,
                                  std::vector<Aggregator>* aggs) {
  if (aggs != nullptr) {
    for (size_t i = 0; i < query.select.size(); ++i) {
      if (query.select[i].agg == AggFunc::kCountStar) {
        (*aggs)[i].AccumulateRow();
      } else {
        GHOSTDB_RETURN_NOT_OK((*aggs)[i].Accumulate(row[i]));
      }
    }
    return Status::OK();
  }
  if (result->rows.size() < config_.result_row_limit) {
    result->rows.push_back(std::move(row));
  }
  return Status::OK();
}

Status SecureExecutor::RunProject(const BoundQuery& query,
                                  const plan::PlanChoice& plan,
                                  const SjResult& sj,
                                  std::vector<VisTable>& vis_tables,
                                  QueryResult* result,
                                  QueryMetrics* metrics,
                                  std::vector<Aggregator>* aggs) {
  auto& ram = device_->ram();
  auto& clock = device_->clock();
  auto scope = clock.Enter("project");
  TableId anchor = query.anchor;
  bool use_bf = plan.project == ProjectAlgo::kProject;

  auto vis_table_of = [&](TableId t) -> VisTable* {
    for (auto& vt : vis_tables) {
      if (vt.table == t) return &vt;
    }
    return nullptr;
  };

  // Which non-anchor tables need the MJoin treatment: projected value
  // columns, or exactness recovery for approximate QEP_SJ filtering.
  std::vector<MJoinTable> mjoin;
  for (TableId t : query.tables) {
    if (t == anchor) continue;
    MJoinTable mt;
    mt.table = t;
    mt.vis_cols = query.ProjectedVisibleColumns(*schema_, t);
    mt.hid_cols = query.ProjectedHiddenColumns(*schema_, t);
    VisTable* vt = vis_table_of(t);
    bool exact_needed = vt != nullptr && vt->need_exact_at_projection;
    if (mt.vis_cols.empty() && mt.hid_cols.empty() && !exact_needed) {
      continue;
    }
    for (ColumnId c : mt.vis_cols) {
      mt.vis_width += schema_->table(t).columns[c].width;
    }
    for (ColumnId c : mt.hid_cols) {
      mt.hid_width += schema_->table(t).columns[c].width;
    }
    mt.out_width = 4 + mt.vis_width + mt.hid_width;
    mt.has_vis_side = vt != nullptr || !mt.vis_cols.empty();
    mjoin.push_back(std::move(mt));
  }

  // Step 1: vertical partitioning — one pass over F' writes each needed
  // Ti.id column run (root-order, duplicates preserved).
  if (!mjoin.empty()) {
    GHOSTDB_ASSIGN_OR_RETURN(
        device::BufferHandle bufs,
        ram.Acquire(static_cast<uint32_t>(mjoin.size()) + 1,
                    "project-partition"));
    RowRunReader reader(&device_->flash(), sj.fprime, sj.row_width,
                        bufs.data());
    GHOSTDB_RETURN_NOT_OK(reader.Prime());
    std::vector<std::unique_ptr<storage::RunWriter>> writers;
    std::vector<uint32_t> offsets;
    for (size_t i = 0; i < mjoin.size(); ++i) {
      writers.push_back(std::make_unique<storage::RunWriter>(
          &device_->flash(), allocator_,
          bufs.data() + (i + 1) * ram.buffer_size(), "project-col"));
      auto off = sj.ColumnOffset(mjoin[i].table, anchor);
      if (!off.has_value()) {
        return Status::Internal("projected table missing from F'");
      }
      offsets.push_back(*off);
    }
    while (reader.valid()) {
      for (size_t i = 0; i < mjoin.size(); ++i) {
        GHOSTDB_RETURN_NOT_OK(
            writers[i]->Append(reader.row() + offsets[i], 4));
      }
      GHOSTDB_RETURN_NOT_OK(reader.Advance());
    }
    for (size_t i = 0; i < mjoin.size(); ++i) {
      GHOSTDB_ASSIGN_OR_RETURN(mjoin[i].column_run, writers[i]->Finish());
    }
  }

  // Step 2+3: per table, Bloom over the column, probe Vis, MJoin passes.
  for (auto& mt : mjoin) {
    const core::TableImage& image = store_->tables[mt.table];

    // Vis values stream (charged): rows passing Ti's visible predicates.
    if (mt.has_vis_side) {
      GHOSTDB_ASSIGN_OR_RETURN(
          mt.payload,
          untrusted_->ServeProjection(query, mt.table, mt.vis_cols));
    }

    // Bloom over QEPSJ.Ti.id, sized to the whole remaining RAM (paper
    // section 5), minus what MJoin needs to stream.
    std::optional<BloomFilter> bloom;
    if (use_bf) {
      uint32_t max_buffers =
          ram.free_buffers() > 8 ? ram.free_buffers() - 8 : 1;
      GHOSTDB_ASSIGN_OR_RETURN(
          BloomFilter bf,
          BloomFilter::Create(&ram, sj.rows, max_buffers,
                              config_.bloom_target_bpe));
      GHOSTDB_ASSIGN_OR_RETURN(device::BufferHandle col_buf,
                               ram.AcquireOne("project-bf-scan"));
      storage::IdRunReader ids(&device_->flash(), mt.column_run,
                               col_buf.data());
      GHOSTDB_RETURN_NOT_OK(ids.Prime());
      while (ids.valid()) {
        bf.Insert(ids.head());
        GHOSTDB_RETURN_NOT_OK(ids.Advance());
      }
      bloom.emplace(std::move(bf));
    }

    // MJoin: stream [σVH ids (+vis values)] ⋈ TiH into RAM chunks; per
    // chunk, scan QEPSJ.Ti.id and emit <pos, vlist, hlist>.
    uint32_t reserve = 3;  // column reader + output writer + TiH reader
    if (ram.free_buffers() <= reserve) {
      return Status::ResourceExhausted("mjoin needs more buffers");
    }
    GHOSTDB_ASSIGN_OR_RETURN(
        device::BufferHandle chunk_buf,
        ram.Acquire(ram.free_buffers() - reserve, "mjoin-chunk"));
    GHOSTDB_ASSIGN_OR_RETURN(device::BufferHandle io_bufs,
                             ram.Acquire(3, "mjoin-io"));
    uint32_t entry_width = 4 + mt.vis_width + mt.hid_width;
    size_t chunk_capacity =
        std::max<size_t>(1, chunk_buf.size() / entry_width);

    std::optional<storage::FixedTableReader> hid_reader;
    std::vector<uint8_t> hid_row;
    if (!mt.hid_cols.empty()) {
      if (!image.hidden_image.has_value()) {
        return Status::Internal("hidden projection without hidden image");
      }
      hid_reader.emplace(&device_->flash(), image.hidden_image.value(),
                         io_bufs.data() + 2 * ram.buffer_size());
      hid_row.resize(image.hidden_image->row_width);
    }

    // σVH iteration state: either the payload rows or the id universe.
    uint64_t payload_pos = 0;
    RowId iota_next = 0;
    RowId iota_n = static_cast<RowId>(image.row_count);
    auto next_entry = [&](RowId* id, const uint8_t** values) -> bool {
      while (true) {
        if (mt.has_vis_side) {
          if (payload_pos >= mt.payload.rows) return false;
          const uint8_t* row =
              mt.payload.bytes.data() + payload_pos * mt.payload.row_width;
          *id = DecodeFixed32(row);
          *values = row + 4;
          payload_pos += 1;
        } else {
          if (iota_next >= iota_n) return false;
          *id = iota_next++;
          *values = nullptr;
        }
        if (bloom.has_value() && !bloom->MightContain(*id)) continue;
        return true;
      }
    };

    std::vector<RowId> chunk_ids;
    std::vector<uint8_t> chunk_values;  // vis+hid per entry
    chunk_ids.reserve(chunk_capacity);
    bool stream_done = false;
    while (!stream_done) {
      chunk_ids.clear();
      chunk_values.clear();
      while (chunk_ids.size() < chunk_capacity) {
        RowId id;
        const uint8_t* values = nullptr;
        if (!next_entry(&id, &values)) {
          stream_done = true;
          break;
        }
        chunk_ids.push_back(id);
        size_t base = chunk_values.size();
        chunk_values.resize(base + mt.vis_width + mt.hid_width);
        if (mt.vis_width > 0 && values != nullptr) {
          std::memcpy(chunk_values.data() + base, values, mt.vis_width);
        }
        if (hid_reader.has_value()) {
          GHOSTDB_RETURN_NOT_OK(hid_reader->ReadRow(id, hid_row.data()));
          uint8_t* dst = chunk_values.data() + base + mt.vis_width;
          for (ColumnId c : mt.hid_cols) {
            const auto& col = schema_->table(mt.table).columns[c];
            std::memcpy(dst, hid_row.data() + image.hidden_offsets[c],
                        col.width);
            dst += col.width;
          }
        }
      }
      if (chunk_ids.empty()) break;
      // Scan the column run; emit matches as <pos, values>.
      storage::IdRunReader col(&device_->flash(), mt.column_run,
                               io_bufs.data());
      GHOSTDB_RETURN_NOT_OK(col.Prime());
      storage::RunWriter out(&device_->flash(), allocator_,
                             io_bufs.data() + ram.buffer_size(),
                             "project-out");
      uint32_t pos = 0;
      std::vector<uint8_t> out_row(mt.out_width);
      uint64_t emitted = 0;
      while (col.valid()) {
        RowId id = col.head();
        auto it =
            std::lower_bound(chunk_ids.begin(), chunk_ids.end(), id);
        if (it != chunk_ids.end() && *it == id) {
          size_t idx = static_cast<size_t>(it - chunk_ids.begin());
          EncodeFixed32(out_row.data(), pos);
          std::memcpy(out_row.data() + 4,
                      chunk_values.data() + idx * (mt.vis_width +
                                                   mt.hid_width),
                      mt.vis_width + mt.hid_width);
          GHOSTDB_RETURN_NOT_OK(out.Append(out_row.data(), mt.out_width));
          emitted += 1;
        }
        pos += 1;
        GHOSTDB_RETURN_NOT_OK(col.Advance());
      }
      GHOSTDB_ASSIGN_OR_RETURN(storage::RunRef run, out.Finish());
      if (emitted > 0) {
        mt.pass_runs.push_back(std::move(run));
      } else {
        GHOSTDB_RETURN_NOT_OK(
            storage::FreeRun(allocator_, run, "project-out"));
      }
    }
    GHOSTDB_RETURN_NOT_OK(
        storage::FreeRun(allocator_, mt.column_run, "project-col"));
    mt.column_run = storage::RunRef{};
  }

  // Anchor-side inputs for the final merge.
  std::vector<ColumnId> anchor_vis_cols =
      query.ProjectedVisibleColumns(*schema_, anchor);
  std::vector<ColumnId> anchor_hid_cols =
      query.ProjectedHiddenColumns(*schema_, anchor);
  VisTable* anchor_vt = vis_table_of(anchor);
  bool anchor_exact =
      anchor_vt != nullptr && anchor_vt->need_exact_at_projection;
  bool need_anchor_payload = !anchor_vis_cols.empty() || anchor_exact;
  untrusted::ProjectionPayload anchor_payload;
  if (need_anchor_payload) {
    GHOSTDB_ASSIGN_OR_RETURN(
        anchor_payload,
        untrusted_->ServeProjection(query, anchor, anchor_vis_cols));
  }

  // Buffer budget for the final merge: F' + one per pass run + anchor TiH.
  {
    uint32_t needed = 1;
    for (auto& mt : mjoin) {
      needed += static_cast<uint32_t>(mt.pass_runs.size());
    }
    if (!anchor_hid_cols.empty()) needed += 1;
    if (needed > ram.free_buffers()) {
      for (auto& mt : mjoin) {
        GHOSTDB_RETURN_NOT_OK(MergeRowRuns(
            &device_->flash(), &ram, allocator_, &mt.pass_runs,
            mt.out_width, 1, "project-out"));
      }
    }
  }

  // Final merge by position.
  uint32_t final_buffers = 1;
  for (auto& mt : mjoin) {
    final_buffers += static_cast<uint32_t>(mt.pass_runs.size());
  }
  if (!anchor_hid_cols.empty()) final_buffers += 1;
  GHOSTDB_ASSIGN_OR_RETURN(device::BufferHandle bufs,
                           ram.Acquire(final_buffers, "final-merge"));
  size_t buf_idx = 0;
  auto next_buf = [&]() {
    return bufs.data() + (buf_idx++) * ram.buffer_size();
  };

  RowRunReader fprime(&device_->flash(), sj.fprime, sj.row_width,
                      next_buf());
  GHOSTDB_RETURN_NOT_OK(fprime.Prime());

  struct TableReaders {
    MJoinTable* mt;
    std::vector<std::unique_ptr<RowRunReader>> readers;
  };
  std::vector<TableReaders> table_readers;
  for (auto& mt : mjoin) {
    TableReaders tr;
    tr.mt = &mt;
    for (auto& run : mt.pass_runs) {
      tr.readers.push_back(std::make_unique<RowRunReader>(
          &device_->flash(), run, mt.out_width, next_buf()));
      GHOSTDB_RETURN_NOT_OK(tr.readers.back()->Prime());
    }
    table_readers.push_back(std::move(tr));
  }

  const core::TableImage& anchor_image = store_->tables[anchor];
  std::optional<storage::FixedTableReader> anchor_hid_reader;
  std::vector<uint8_t> anchor_hid_row;
  if (!anchor_hid_cols.empty()) {
    if (!anchor_image.hidden_image.has_value()) {
      return Status::Internal("anchor hidden projection without image");
    }
    anchor_hid_reader.emplace(&device_->flash(),
                              anchor_image.hidden_image.value(), next_buf());
    anchor_hid_row.resize(anchor_image.hidden_image->row_width);
  }

  uint64_t anchor_payload_pos = 0;
  std::vector<const uint8_t*> mjoin_rows(mjoin.size());
  std::vector<std::vector<uint8_t>> mjoin_row_copies(mjoin.size());

  for (uint32_t pos = 0; fprime.valid(); ++pos) {
    const uint8_t* frow = fprime.row();
    RowId anchor_id = DecodeFixed32(frow);
    bool drop = false;

    for (size_t i = 0; i < table_readers.size() && !drop; ++i) {
      auto& tr = table_readers[i];
      mjoin_rows[i] = nullptr;
      for (auto& r : tr.readers) {
        while (r->valid() && r->key() < pos) {
          GHOSTDB_RETURN_NOT_OK(r->Advance());
        }
        if (r->valid() && r->key() == pos) {
          mjoin_row_copies[i].assign(r->row(), r->row() + tr.mt->out_width);
          mjoin_rows[i] = mjoin_row_copies[i].data();
        }
      }
      if (mjoin_rows[i] == nullptr) drop = true;
    }

    const uint8_t* anchor_vis_row = nullptr;
    if (!drop && need_anchor_payload) {
      while (anchor_payload_pos < anchor_payload.rows &&
             DecodeFixed32(anchor_payload.bytes.data() +
                           anchor_payload_pos * anchor_payload.row_width) <
                 anchor_id) {
        anchor_payload_pos += 1;
      }
      if (anchor_payload_pos < anchor_payload.rows &&
          DecodeFixed32(anchor_payload.bytes.data() +
                        anchor_payload_pos * anchor_payload.row_width) ==
              anchor_id) {
        anchor_vis_row = anchor_payload.bytes.data() +
                         anchor_payload_pos * anchor_payload.row_width + 4;
      } else {
        drop = true;  // fails the anchor's visible selection
      }
    }

    if (!drop) {
      if (anchor_hid_reader.has_value()) {
        GHOSTDB_RETURN_NOT_OK(
            anchor_hid_reader->ReadRow(anchor_id, anchor_hid_row.data()));
      }
      result->total_rows += 1;
      if (aggs != nullptr ||
          result->rows.size() < config_.result_row_limit) {
        std::vector<Value> out_row;
        out_row.reserve(query.select.size());
        for (const auto& item : query.select) {
          const auto& cols = schema_->table(item.table).columns;
          if (item.table == anchor) {
            if (item.is_id) {
              out_row.push_back(
                  Value::Int32(static_cast<int32_t>(anchor_id)));
            } else if (!cols[item.column].hidden) {
              uint32_t off = 0;
              for (ColumnId c : anchor_vis_cols) {
                if (c == item.column) break;
                off += cols[c].width;
              }
              out_row.push_back(Value::Decode(anchor_vis_row + off,
                                              cols[item.column].type,
                                              cols[item.column].width));
            } else {
              out_row.push_back(Value::Decode(
                  anchor_hid_row.data() +
                      anchor_image.hidden_offsets[item.column],
                  cols[item.column].type, cols[item.column].width));
            }
            continue;
          }
          if (item.is_id) {
            auto off = sj.ColumnOffset(item.table, anchor);
            if (!off.has_value()) {
              return Status::Internal("select id missing from F'");
            }
            out_row.push_back(Value::Int32(
                static_cast<int32_t>(DecodeFixed32(frow + *off))));
            continue;
          }
          // Value column of a non-anchor table: from its MJoin output.
          size_t mi = 0;
          while (mi < mjoin.size() && mjoin[mi].table != item.table) ++mi;
          if (mi == mjoin.size()) {
            return Status::Internal("projected table missing from MJoin");
          }
          const MJoinTable& mt = mjoin[mi];
          const uint8_t* row = mjoin_rows[mi];
          uint32_t off = 4;
          bool found = false;
          if (!cols[item.column].hidden) {
            for (ColumnId c : mt.vis_cols) {
              if (c == item.column) {
                found = true;
                break;
              }
              off += cols[c].width;
            }
          } else {
            off += mt.vis_width;
            for (ColumnId c : mt.hid_cols) {
              if (c == item.column) {
                found = true;
                break;
              }
              off += cols[c].width;
            }
          }
          if (!found) {
            return Status::Internal("column missing from MJoin output");
          }
          out_row.push_back(Value::Decode(row + off,
                                          cols[item.column].type,
                                          cols[item.column].width));
        }
        GHOSTDB_RETURN_NOT_OK(
            FoldOrEmit(query, std::move(out_row), result, aggs));
      }
    }
    GHOSTDB_RETURN_NOT_OK(fprime.Advance());
  }

  // Cleanup projection temporaries.
  for (auto& mt : mjoin) {
    for (auto& run : mt.pass_runs) {
      GHOSTDB_RETURN_NOT_OK(
          storage::FreeRun(allocator_, run, "project-out"));
    }
  }
  metrics->result_rows = result->total_rows;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Brute-Force projection baseline (Figs 12-13)
// ---------------------------------------------------------------------------

Status SecureExecutor::RunBruteForceProject(
    const BoundQuery& query, const SjResult& sj,
    std::vector<VisTable>& vis_tables, QueryResult* result,
    QueryMetrics* metrics, std::vector<Aggregator>* aggs) {
  auto& ram = device_->ram();
  auto& clock = device_->clock();
  auto scope = clock.Enter("project");
  TableId anchor = query.anchor;

  auto vis_table_of = [&](TableId t) -> VisTable* {
    for (auto& vt : vis_tables) {
      if (vt.table == t) return &vt;
    }
    return nullptr;
  };

  // Per-table state: spooled Vis values + hidden reader.
  struct BruteTable {
    TableId table;
    std::vector<ColumnId> vis_cols;
    std::vector<ColumnId> hid_cols;
    untrusted::ProjectionPayload payload;
    storage::RunRef spool;  ///< payload copied to flash (randomly accessed)
    bool has_vis_side = false;
    bool exact = false;
    std::optional<storage::FixedTableReader> hid_reader;
    std::vector<uint8_t> hid_row;
    device::BufferHandle probe_buf;
  };
  std::vector<BruteTable> tables;
  for (TableId t : query.tables) {
    BruteTable bt;
    bt.table = t;
    bt.vis_cols = query.ProjectedVisibleColumns(*schema_, t);
    bt.hid_cols = query.ProjectedHiddenColumns(*schema_, t);
    VisTable* vt = vis_table_of(t);
    bt.exact = vt != nullptr && vt->need_exact_at_projection;
    if (bt.vis_cols.empty() && bt.hid_cols.empty() && !bt.exact) continue;
    bt.has_vis_side = vt != nullptr || !bt.vis_cols.empty();
    if (bt.has_vis_side) {
      GHOSTDB_ASSIGN_OR_RETURN(
          bt.payload, untrusted_->ServeProjection(query, t, bt.vis_cols));
      // Spool to flash: Brute-Force random-accesses vlist there (paper
      // section 6.5).
      GHOSTDB_ASSIGN_OR_RETURN(device::BufferHandle wbuf,
                               ram.AcquireOne("brute-spool"));
      storage::RunWriter writer(&device_->flash(), allocator_, wbuf.data(),
                                "brute-spool");
      GHOSTDB_RETURN_NOT_OK(
          writer.Append(bt.payload.bytes.data(), bt.payload.bytes.size()));
      GHOSTDB_ASSIGN_OR_RETURN(bt.spool, writer.Finish());
    }
    if (!bt.hid_cols.empty()) {
      const core::TableImage& image = store_->tables[t];
      if (!image.hidden_image.has_value()) {
        return Status::Internal("hidden projection without image");
      }
      GHOSTDB_ASSIGN_OR_RETURN(bt.probe_buf, ram.AcquireOne("brute-hid"));
      bt.hid_reader.emplace(&device_->flash(), image.hidden_image.value(),
                            bt.probe_buf.data());
      bt.hid_row.resize(image.hidden_image->row_width);
    }
    tables.push_back(std::move(bt));
  }

  GHOSTDB_ASSIGN_OR_RETURN(device::BufferHandle fbuf,
                           ram.AcquireOne("brute-fprime"));
  GHOSTDB_ASSIGN_OR_RETURN(device::BufferHandle probe_buf,
                           ram.AcquireOne("brute-probe"));
  RowRunReader fprime(&device_->flash(), sj.fprime, sj.row_width,
                      fbuf.data());
  GHOSTDB_RETURN_NOT_OK(fprime.Prime());

  while (fprime.valid()) {
    const uint8_t* frow = fprime.row();
    RowId anchor_id = DecodeFixed32(frow);
    bool drop = false;
    // Per table: resolve ids, fetch values with random accesses.
    struct Resolved {
      const uint8_t* vis_values = nullptr;
      const uint8_t* hid_row = nullptr;
    };
    std::map<TableId, Resolved> resolved;
    for (auto& bt : tables) {
      RowId id;
      if (bt.table == anchor) {
        id = anchor_id;
      } else {
        auto off = sj.ColumnOffset(bt.table, anchor);
        if (!off.has_value()) {
          return Status::Internal("brute-force table missing from F'");
        }
        id = DecodeFixed32(frow + *off);
      }
      Resolved res;
      if (bt.has_vis_side) {
        // Cost model: one interpolated page probe into the spooled vlist
        // (ids are uniform); correctness from the host-side payload.
        uint64_t row_count = bt.payload.rows;
        if (row_count > 0) {
          uint64_t est_row = std::min<uint64_t>(
              row_count - 1,
              static_cast<uint64_t>(
                  (static_cast<double>(id) /
                   std::max<uint64_t>(store_->tables[bt.table].row_count,
                                      1)) *
                  static_cast<double>(row_count)));
          uint64_t byte = est_row * bt.payload.row_width;
          uint32_t page = static_cast<uint32_t>(
              byte / device_->flash().config().page_size);
          GHOSTDB_RETURN_NOT_OK(device_->flash().ReadPage(
              bt.spool.PageAt(page), probe_buf.data(), 0,
              device_->flash().config().page_size));
        }
        // Binary search the payload for the actual row.
        uint64_t lo = 0, hi = bt.payload.rows;
        const uint8_t* hit = nullptr;
        while (lo < hi) {
          uint64_t mid = (lo + hi) / 2;
          const uint8_t* row =
              bt.payload.bytes.data() + mid * bt.payload.row_width;
          RowId rid = DecodeFixed32(row);
          if (rid < id) {
            lo = mid + 1;
          } else if (rid > id) {
            hi = mid;
          } else {
            hit = row + 4;
            break;
          }
        }
        if (hit == nullptr) {
          drop = true;  // fails the visible selection (or bloom FP)
          break;
        }
        res.vis_values = hit;
      }
      if (bt.hid_reader.has_value()) {
        GHOSTDB_RETURN_NOT_OK(bt.hid_reader->ReadRow(id, bt.hid_row.data()));
        res.hid_row = bt.hid_row.data();
      }
      resolved[bt.table] = res;
    }

    if (!drop) {
      result->total_rows += 1;
      if (aggs != nullptr ||
          result->rows.size() < config_.result_row_limit) {
        std::vector<Value> out_row;
        for (const auto& item : query.select) {
          const auto& cols = schema_->table(item.table).columns;
          if (item.is_id) {
            if (item.table == anchor) {
              out_row.push_back(
                  Value::Int32(static_cast<int32_t>(anchor_id)));
            } else {
              auto off = sj.ColumnOffset(item.table, anchor);
              if (!off.has_value()) {
                return Status::Internal("select id missing from F'");
              }
              out_row.push_back(Value::Int32(
                  static_cast<int32_t>(DecodeFixed32(frow + *off))));
            }
            continue;
          }
          auto it = std::find_if(
              tables.begin(), tables.end(),
              [&](const BruteTable& bt) { return bt.table == item.table; });
          if (it == tables.end()) {
            return Status::Internal("projected table not resolved");
          }
          const Resolved& res = resolved[item.table];
          if (!cols[item.column].hidden) {
            uint32_t off = 0;
            for (ColumnId c : it->vis_cols) {
              if (c == item.column) break;
              off += cols[c].width;
            }
            out_row.push_back(Value::Decode(res.vis_values + off,
                                            cols[item.column].type,
                                            cols[item.column].width));
          } else {
            const core::TableImage& image = store_->tables[item.table];
            out_row.push_back(Value::Decode(
                res.hid_row + image.hidden_offsets[item.column],
                cols[item.column].type, cols[item.column].width));
          }
        }
        GHOSTDB_RETURN_NOT_OK(
            FoldOrEmit(query, std::move(out_row), result, aggs));
      }
    }
    GHOSTDB_RETURN_NOT_OK(fprime.Advance());
  }

  for (auto& bt : tables) {
    if (!bt.spool.extents.empty()) {
      GHOSTDB_RETURN_NOT_OK(
          storage::FreeRun(allocator_, bt.spool, "brute-spool"));
    }
  }
  metrics->result_rows = result->total_rows;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Top level
// ---------------------------------------------------------------------------

MetricSnapshot MetricSnapshot::Take(device::SecureDevice* device) {
  MetricSnapshot snap;
  snap.clock_ns = device->clock().now();
  snap.categories = device->clock().categories();
  snap.flash = device->flash().stats();
  snap.bytes_to_secure =
      device->channel().BytesMoved(device::Direction::kToSecure);
  snap.bytes_to_untrusted =
      device->channel().BytesMoved(device::Direction::kToUntrusted);
  return snap;
}

void MetricSnapshot::Delta(device::SecureDevice* device,
                           QueryMetrics* metrics) const {
  metrics->total_ns = device->clock().now() - clock_ns;
  metrics->categories.clear();
  for (const auto& [k, v] : device->clock().categories()) {
    auto it = categories.find(k);
    SimNanos before = it == categories.end() ? 0 : it->second;
    if (v > before) metrics->categories[k] = v - before;
  }
  metrics->flash = device->flash().stats() - flash;
  metrics->bytes_to_secure =
      device->channel().BytesMoved(device::Direction::kToSecure) -
      bytes_to_secure;
  metrics->bytes_to_untrusted =
      device->channel().BytesMoved(device::Direction::kToUntrusted) -
      bytes_to_untrusted;
}

Result<QueryResult> SecureExecutor::Execute(const BoundQuery& query,
                                            const plan::PlanChoice& plan,
                                            const MetricSnapshot* baseline) {
  auto& ram = device_->ram();
  MetricSnapshot snap =
      baseline != nullptr ? *baseline : MetricSnapshot::Take(device_);
  uint32_t pages0 = allocator_->used_pages();
  ram.ResetPeak();

  QueryMetrics metrics;

  // Visible selections, one Vis request per table with visible predicates.
  std::vector<VisTable> vis_tables;
  for (TableId t : query.tables) {
    if (!query.HasVisiblePredicateOn(t)) continue;
    VisTable vt;
    vt.table = t;
    auto it = plan.vis.find(t);
    vt.strategy =
        it != plan.vis.end() ? it->second : VisStrategy::kCrossPreFilter;
    GHOSTDB_ASSIGN_OR_RETURN(vt.ids,
                             untrusted_->ServeVisibleIds(query, t));
    vis_tables.push_back(std::move(vt));
  }

  GHOSTDB_ASSIGN_OR_RETURN(SjResult sj,
                           RunQepSj(query, &vis_tables, &metrics));
  metrics.qepsj_rows = sj.rows;

  QueryResult result;
  for (const auto& c : query.select) result.columns.push_back(c.display);

  // Aggregates (paper future work): folded on the device as rows stream
  // out of the projection; only aggregate values reach the display.
  std::vector<Aggregator> aggregators;
  std::vector<Aggregator>* aggs = nullptr;
  if (query.HasAggregates()) {
    for (const auto& item : query.select) {
      catalog::DataType input_type =
          item.is_id ? catalog::DataType::kInt32
                     : schema_->table(item.table).columns[item.column].type;
      aggregators.emplace_back(item.agg, input_type);
    }
    aggs = &aggregators;
  }

  if (plan.project == ProjectAlgo::kBruteForce) {
    GHOSTDB_RETURN_NOT_OK(RunBruteForceProject(query, sj, vis_tables,
                                               &result, &metrics, aggs));
  } else {
    GHOSTDB_RETURN_NOT_OK(
        RunProject(query, plan, sj, vis_tables, &result, &metrics, aggs));
  }

  if (aggs != nullptr) {
    std::vector<Value> agg_row;
    for (auto& a : aggregators) {
      GHOSTDB_ASSIGN_OR_RETURN(Value v, a.Finish());
      agg_row.push_back(std::move(v));
    }
    result.rows = {std::move(agg_row)};
    result.total_rows = 1;
  }

  vis_tables.clear();
  GHOSTDB_RETURN_NOT_OK(storage::FreeRun(allocator_, sj.fprime, "fprime"));

  snap.Delta(device_, &metrics);
  metrics.peak_ram_buffers = ram.peak_used_buffers();
  metrics.result_rows = result.total_rows;

  // Temporary flash space must all be returned: leaks here would slowly
  // fill the key.
  if (allocator_->used_pages() != pages0) {
    return Status::Internal("query leaked " +
                            std::to_string(allocator_->used_pages() -
                                           pages0) +
                            " flash pages");
  }
  result.metrics = metrics;
  return result;
}

}  // namespace ghostdb::exec

// Value-space operators above the projection: aggregation, DISTINCT,
// ORDER BY, LIMIT, and the fused top-K sort. These run entirely on the
// Secure side — result rows never cross the channel — so they add no
// observable behavior that could depend on Hidden data. All of them work
// on the encoded columns of ColumnBatch: DISTINCT hashes encoded row
// bytes, Sort compares encoded sort keys (catalog::CompareEncoded), Limit
// and Distinct drop rows through the selection vector without copying
// cells.
//
// The blocking operators (Sort, Distinct, TopKSort) are memory-bounded:
// their working set is capped by the relational-tail budget the executor
// derives from the session's RAM partition (ExecContext::sort_budget_*).
// Past the budget they spill sorted runs to flash and stream the result
// back through ExternalRowSorter — secure memory stays O(budget) no
// matter how many rows the hidden predicates let through.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/aggregate.h"
#include "exec/operator.h"
#include "exec/spill_sort.h"

namespace ghostdb::exec {

/// Transparent hashing so hash containers over owned string keys can be
/// probed with a string_view (no copy per lookup).
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

/// \brief Gather-leg source of a sharded scatter-gather over a row-boundary
/// plan: emits the seq-merged union of the per-shard projection outputs
/// (ExecContext::gather_rows), batch-wise in the merged stream's layout, so
/// the unmodified relational tail above runs once over the exact
/// single-device global row stream. Honors rows_demanded like the
/// projection (undemanded rows stay counted via skipped_rows) and surfaces
/// the shards' own demand-skipped counts once at end of stream.
class GatherSourceOp final : public Operator {
 public:
  explicit GatherSourceOp(ExecContext* ctx) : Operator(ctx) {}
  std::string_view name() const override { return "GatherSource"; }
  Result<ColumnBatch> Next() override;

 private:
  std::vector<uint32_t> offsets_;  ///< per-column offsets in a merged row
  uint64_t pos_ = 0;               ///< next merged row to emit
  uint64_t emitted_ = 0;           ///< rows materialized so far
  bool done_ = false;
};

/// \brief Folds the child stream into one row of aggregate values.
/// Per-row data never leaves the key; only the final aggregate values reach
/// the secure display. Inputs are accumulated from their encoded cells;
/// the single output row uses this operator's own aggregate layout.
///
/// Sharded fleets: on a scatter leg (ExecContext::partials_out) the folded
/// accumulators ship as one keyless PartialAggGroup instead of rendering a
/// row; on the gather leg (ExecContext::gather_partials, built childless)
/// the shard partials merge via Aggregator::MergeFrom and the empty-input
/// rule applies to the *merged* count — so an empty shard never decides it.
class AggregateOp final : public Operator {
 public:
  explicit AggregateOp(ExecContext* ctx) : Operator(ctx) {}
  std::string_view name() const override { return "Aggregate"; }
  Status Open() override;
  Result<ColumnBatch> Next() override;

 private:
  std::vector<Aggregator> aggregators_;
  BatchLayout out_layout_;  ///< aggregate result types (COUNT -> BIGINT...)
  bool done_ = false;
};

/// \brief Grouped aggregation (`SELECT k1, k2, AGG(x) ... GROUP BY k1,
/// k2`): one output row per distinct combination of the plain (group-key)
/// select items, aggregates folded per group, groups emitted in
/// first-arrival order. Everything happens on the Secure side after the
/// projection, so grouping adds no observable behavior.
///
/// While the group table fits the relational-tail budget this is a
/// streaming hash phase exactly like DistinctOp's: groups are keyed by the
/// concatenated canonical encoded bytes of the key cells (heterogeneous
/// string_view lookup — only genuinely new groups allocate), and rows of
/// known groups fold into their Aggregators in O(1) extra memory. Past the
/// budget the group table freezes: rows of frozen groups keep folding in
/// place, rows of new groups reroute through ExternalRowSorter sort-based
/// grouping — packed as single-row *partial-aggregate* spill rows (key
/// cells + per-aggregate encoded partial state + arrival seq) that the
/// sorter folds key-adjacent at run-write time (set_fold), so each spill
/// run carries at most one row per group; the drain folds the per-run
/// partials again, renders each group, and re-sorts by first-arrival
/// sequence. Every frozen group's first arrival precedes every rerouted
/// group's, so the concatenated output (frozen groups, then rerouted ones)
/// is byte-identical to the pure hash path's. (Integer-SUM overflow is
/// detected on partial subtotals rather than per input row, so a transient
/// mid-group overflow that cancels within one spill segment no longer
/// errors — the same granularity the sharded partial combine has.)
///
/// Sharded fleets: a scatter leg (ExecContext::partials_out) dumps every
/// local group — hash and spilled — as PartialAggGroups (canonical key,
/// raw key cells, accumulators, smallest global arrival seq) instead of
/// rendering rows; the gather leg (ExecContext::gather_partials, built
/// childless) seeds its group table from the combined partials, already in
/// global first-arrival order, and just emits.
class GroupAggregateOp final : public Operator {
 public:
  explicit GroupAggregateOp(ExecContext* ctx) : Operator(ctx) {}
  std::string_view name() const override { return "GroupAggregate"; }
  Status Open() override;
  Result<ColumnBatch> Next() override;
  Status Close() override;

 private:
  /// One group of the hash phase: the raw key cells of its first-arrival
  /// row (what the group's output row shows), one accumulator per
  /// aggregate select item, and the first-arrival sequence (the smallest
  /// global anchor id under sharding — the gather combiner's order key).
  struct Group {
    std::vector<uint8_t> key_cells;
    std::vector<Aggregator> aggs;
    uint64_t first_seq = 0;
  };

  /// Fresh accumulators, one per aggregate select item.
  std::vector<Aggregator> MakeAggregators() const;
  /// Folds one live input row into a group's accumulators.
  Status AccumulateInto(Group* g, const ColumnBatch& batch, uint32_t row);
  /// Enters spill mode: new-group rows flow through sort-based grouping.
  Status StartSpill();
  /// Packs one input row as a single-row partial spill row into row_buf_:
  /// key cells, per-aggregate EncodePartial state, arrival sequence.
  Status PackPartialRow(const ColumnBatch& batch, uint32_t row, uint64_t seq);
  /// ExternalRowSorter fold hook: merges `row`'s per-item partial state
  /// into `acc`'s (keys equal; acc keeps its own smaller sequence).
  Status FoldPartialRow(uint8_t* acc, const uint8_t* row);
  /// Drains phase A (key order, folding key-adjacent partials) into phase
  /// B (first-arrival order) and seals it.
  Status FinishSpill();
  /// Renders one fully folded partial spill row as an output-layout row +
  /// first-arrival sequence and hands it to phase B.
  Status FlushSpillGroup(const uint8_t* partial);
  /// Scatter-shard mode: dumps every local group (hash table + spilled) as
  /// PartialAggGroups into ctx->partials_out instead of rendering rows.
  Status DumpPartials();
  /// DumpPartials' spill side: drains phase A, folds key-adjacent
  /// partials, and emits each folded group as a PartialAggGroup (phase B
  /// never runs — the gather combiner orders globally).
  Status FinishSpillPartials();
  /// Streams the grouped output: hash groups first, then spilled ones.
  Result<ColumnBatch> Emit();

  std::vector<size_t> key_items_;  ///< select indexes with agg == kNone
  std::vector<size_t> agg_items_;  ///< select indexes with an aggregate
  BatchLayout out_layout_;  ///< key cells keep their input encoding;
                            ///< aggregates their result encoding
  std::vector<uint32_t> out_offsets_;
  const BatchLayout* in_layout_ = nullptr;
  std::vector<uint32_t> in_offsets_;
  // Partial spill-row layout: [key cells | per-aggregate partial state |
  // u64 seq]. A pure function of the visible query shape.
  std::vector<uint32_t> spill_key_offsets_;  ///< per key_items_ entry
  std::vector<uint32_t> spill_agg_offsets_;  ///< per agg_items_ entry
  uint32_t spill_seq_offset_ = 0;
  uint32_t spill_stride_ = 0;
  RowComparator key_cmp_;  ///< spill order: key cells, ties by arrival
  std::vector<uint8_t> row_buf_;  ///< one packed partial row + sequence
  std::vector<uint8_t> out_buf_;  ///< one folded output row + sequence
  uint64_t seq_ = 0;  ///< arrival sequence across all input rows
  /// Per-batch canonical keys, extracted morsel-parallel before the
  /// sequential fold (reused across batches).
  std::vector<std::string> key_scratch_;

  /// Hash phase: canonical key bytes -> index into groups_ (first-arrival
  /// order).
  std::unordered_map<std::string, size_t, TransparentStringHash,
                     std::equal_to<>>
      index_;
  std::vector<Group> groups_;
  size_t table_bytes_ = 0;  ///< budget accounting for the group table

  std::unique_ptr<ExternalRowSorter> by_key_;      ///< spill phase A
  std::unique_ptr<ExternalRowSorter> by_arrival_;  ///< spill phase B
  bool spilling_ = false;
  bool emitting_ = false;
  size_t emit_group_ = 0;  ///< next hash group to emit
  bool done_ = false;
};

/// \brief Drops duplicate rows; the first occurrence (in anchor-id order)
/// survives.
///
/// While the distinct set fits the relational-tail budget this is the
/// streaming hash path: a set over concatenated encoded row bytes
/// (heterogeneous string_view lookup, so only genuinely new keys
/// allocate), survivors forwarded as selections, copy-free. Past the
/// budget the operator switches to sort-based dedup: remaining rows are
/// filtered against the frozen hash set, externally sorted by value with
/// duplicates dropped, then re-sorted by arrival sequence so the output
/// order (first occurrences, arrival order) is unchanged.
class DistinctOp final : public Operator {
 public:
  explicit DistinctOp(ExecContext* ctx) : Operator(ctx) {}
  std::string_view name() const override { return "Distinct"; }
  Result<ColumnBatch> Next() override;
  Status Close() override;

 private:
  /// Lazily binds layout-derived state to the first child batch.
  void BindLayout(const ColumnBatch& batch);
  /// Enters spill mode: remaining input flows through value-sorted dedup.
  Status StartSpill();
  /// Routes one live row into the spill sorter (unless its key is in the
  /// frozen hash set). `key` is the row's precomputed canonical key.
  Status SpillRow(const ColumnBatch& batch, uint32_t row,
                  const std::string& key);
  /// Drains phase A (value order, deduped) into phase B (arrival order)
  /// and starts emitting.
  Status FinishSpill();
  Result<ColumnBatch> EmitSpilled();

  std::unordered_set<std::string, TransparentStringHash, std::equal_to<>>
      seen_;
  size_t seen_bytes_ = 0;   ///< key bytes held by seen_ (budget accounting)
  uint64_t seq_ = 0;        ///< arrival sequence across all input rows
  const BatchLayout* layout_ = nullptr;
  std::vector<uint32_t> offsets_;  ///< per-column byte offsets in a row
  std::vector<uint8_t> row_buf_;   ///< one spill row (cells + sequence)
  /// Per-batch row keys, extracted morsel-parallel before the sequential
  /// dedup pass (reused across batches).
  std::vector<std::string> key_scratch_;
  std::unique_ptr<ExternalRowSorter> by_value_;    ///< spill phase A
  std::unique_ptr<ExternalRowSorter> by_arrival_;  ///< spill phase B
  bool child_done_ = false;
  bool spilling_ = false;
  bool emitting_ = false;
};

/// \brief ORDER BY over select-list columns: a blocking sort — keys are
/// compared in their encodings, ties keep anchor-id (arrival) order —
/// bounded by the relational-tail budget; larger inputs spill sorted runs
/// to flash and stream the merge back in planner-sized batches.
class SortOp final : public Operator {
 public:
  explicit SortOp(ExecContext* ctx) : Operator(ctx) {}
  std::string_view name() const override { return "Sort"; }
  Result<ColumnBatch> Next() override;
  Status Close() override;

 private:
  Status Gather();

  const BatchLayout* layout_ = nullptr;
  std::vector<uint32_t> offsets_;
  std::vector<uint8_t> row_buf_;
  std::unique_ptr<ExternalRowSorter> sorter_;
  uint64_t seq_ = 0;
  bool gathered_ = false;
  bool done_ = false;
};

/// \brief The fused `ORDER BY ... LIMIT k` operator: a bounded k-row heap
/// of encoded rows instead of materializing and sorting everything —
/// O(n log k) compares, O(k) secure memory, no spill needed. Ties keep
/// the stable arrival-order semantics of Sort → Limit. When k itself
/// exceeds the relational-tail budget the operator degrades to the
/// spilling sort truncated at k rows, so memory stays bounded either way.
class TopKSortOp final : public Operator {
 public:
  TopKSortOp(ExecContext* ctx, uint64_t k) : Operator(ctx), k_(k) {}
  std::string_view name() const override { return "TopKSort"; }
  Result<ColumnBatch> Next() override;
  Status Close() override;

 private:
  Status Gather();
  Status Offer(const uint8_t* row);
  const uint8_t* Slot(uint32_t slot) const {
    return arena_.data() + static_cast<size_t>(slot) * stride_;
  }

  uint64_t k_;
  const BatchLayout* layout_ = nullptr;
  std::vector<uint32_t> offsets_;
  uint32_t stride_ = 0;
  RowComparator cmp_;
  std::vector<uint8_t> row_buf_;
  /// Heap mode (k within budget): k row slots, max-heap with the worst
  /// kept row on top.
  std::vector<uint8_t> arena_;
  std::vector<uint32_t> heap_;
  std::vector<uint32_t> order_;  ///< final ascending order of the slots
  size_t emit_pos_ = 0;
  /// Fallback (k past budget): full external sort, truncated at k.
  std::unique_ptr<ExternalRowSorter> sorter_;
  uint64_t emitted_ = 0;
  uint64_t seq_ = 0;
  uint64_t short_circuits_ = 0;  ///< rows rejected against the heap top
  bool gathered_ = false;
  bool done_ = false;
};

/// \brief The volume defense root (ExecConfig::volume_padding): forwards
/// the child stream untouched while counting its real volume (live +
/// skipped rows), then emits all-dummy batches (zero-filled cells,
/// padding_rows == live()) until the observed volume reaches the mode's
/// target — the next power of two of the real volume (kQuantize) or the
/// visible worst case (kWorstCase: the anchor table's row count, clamped
/// by LIMIT k / the 0-or-1 aggregate row). Dummies are stripped at the
/// QueryResult boundary, so answers are unchanged in every mode; their
/// synthesis cost is charged to the "padding" clock category at channel
/// throughput, modeling the padded result link a deployment would pay.
class VolumePadOp final : public Operator {
 public:
  explicit VolumePadOp(ExecContext* ctx) : Operator(ctx) {}
  std::string_view name() const override { return "VolumePad"; }
  Result<ColumnBatch> Next() override;

 private:
  /// The mode's observed-volume target for a stream of `real` rows.
  uint64_t PaddedTarget(uint64_t real) const;
  /// One all-dummy batch of `rows` zero rows in the output layout.
  ColumnBatch DummyBatch(uint64_t rows);

  /// Output layout: bound to the first real child batch (the dummy rows
  /// must be indistinguishable in shape), ctx->value_layout when the
  /// stream was empty — dummies are stripped unread, so only the width of
  /// the synthesized bytes depends on it.
  const BatchLayout* layout_ = nullptr;
  uint64_t real_rows_ = 0;
  uint64_t dummies_left_ = 0;
  bool draining_ = false;
  bool done_ = false;
};

/// \brief Truncates the stream after `limit` rows and stops pulling its
/// child — the only operator that ends a query early. Truncation trims the
/// selection vector; cells are not touched.
class LimitOp final : public Operator {
 public:
  LimitOp(ExecContext* ctx, uint64_t limit)
      : Operator(ctx), limit_(limit) {}
  std::string_view name() const override { return "Limit"; }
  Result<ColumnBatch> Next() override;

 private:
  uint64_t limit_;
  uint64_t emitted_ = 0;
};

}  // namespace ghostdb::exec

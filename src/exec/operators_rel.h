// Value-space operators above the projection: aggregation, DISTINCT,
// ORDER BY, LIMIT. These run entirely on the Secure side — result rows
// never cross the channel — so they add no observable behavior that could
// depend on Hidden data. All of them work on the encoded columns of
// ColumnBatch: DISTINCT hashes encoded row bytes, Sort compares encoded
// sort keys (catalog::CompareEncoded), Limit and Distinct drop rows through
// the selection vector without copying cells.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "exec/aggregate.h"
#include "exec/operator.h"

namespace ghostdb::exec {

/// \brief Folds the child stream into one row of aggregate values.
/// Per-row data never leaves the key; only the final aggregate values reach
/// the secure display. Inputs are accumulated from their encoded cells;
/// the single output row uses this operator's own aggregate layout.
class AggregateOp final : public Operator {
 public:
  explicit AggregateOp(ExecContext* ctx) : Operator(ctx) {}
  std::string_view name() const override { return "Aggregate"; }
  Status Open() override;
  Result<ColumnBatch> Next() override;

 private:
  std::vector<Aggregator> aggregators_;
  BatchLayout out_layout_;  ///< aggregate result types (COUNT -> BIGINT...)
  bool done_ = false;
};

/// \brief Drops duplicate rows; the first occurrence (in anchor-id order)
/// survives. The distinct set — a hash set over the concatenated encoded
/// row bytes — lives in Secure host memory; surviving rows pass through as
/// a selection over the child's batch, copy-free.
class DistinctOp final : public Operator {
 public:
  explicit DistinctOp(ExecContext* ctx) : Operator(ctx) {}
  std::string_view name() const override { return "Distinct"; }
  Result<ColumnBatch> Next() override;

 private:
  std::unordered_set<std::string> seen_;
  bool child_done_ = false;
};

/// \brief ORDER BY over select-list columns: a blocking stable sort (ties
/// keep anchor-id order) of a permutation over the gathered columns — the
/// keys are compared in their encodings, cells are never decoded — emitted
/// as one batch whose selection vector is the sorted permutation.
class SortOp final : public Operator {
 public:
  explicit SortOp(ExecContext* ctx) : Operator(ctx) {}
  std::string_view name() const override { return "Sort"; }
  Result<ColumnBatch> Next() override;

 private:
  ColumnBatch data_;  ///< all child rows, gathered densely
  bool done_ = false;
};

/// \brief Truncates the stream after `limit` rows and stops pulling its
/// child — the only operator that ends a query early. Truncation trims the
/// selection vector; cells are not touched.
class LimitOp final : public Operator {
 public:
  LimitOp(ExecContext* ctx, uint64_t limit)
      : Operator(ctx), limit_(limit) {}
  std::string_view name() const override { return "Limit"; }
  Result<ColumnBatch> Next() override;

 private:
  uint64_t limit_;
  uint64_t emitted_ = 0;
};

}  // namespace ghostdb::exec

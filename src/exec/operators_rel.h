// Value-space operators above the projection: aggregation, DISTINCT,
// ORDER BY, LIMIT. These run entirely on the Secure side — result rows
// never cross the channel — so they add no observable behavior that could
// depend on Hidden data.
#pragma once

#include <set>
#include <vector>

#include "exec/aggregate.h"
#include "exec/operator.h"

namespace ghostdb::exec {

/// \brief Folds the child stream into one row of aggregate values.
/// Per-row data never leaves the key; only the final aggregate values reach
/// the secure display.
class AggregateOp final : public Operator {
 public:
  explicit AggregateOp(ExecContext* ctx) : Operator(ctx) {}
  std::string_view name() const override { return "Aggregate"; }
  Status Open() override;
  Result<RowBatch> Next() override;

 private:
  std::vector<Aggregator> aggregators_;
  bool done_ = false;
};

/// \brief Drops duplicate rows; the first occurrence (in anchor-id order)
/// survives. The distinct set lives in Secure host memory.
class DistinctOp final : public Operator {
 public:
  explicit DistinctOp(ExecContext* ctx) : Operator(ctx) {}
  std::string_view name() const override { return "Distinct"; }
  Result<RowBatch> Next() override;

 private:
  std::set<std::vector<catalog::Value>> seen_;
  bool child_done_ = false;
};

/// \brief ORDER BY over select-list columns: a blocking stable sort (ties
/// keep anchor-id order), streamed back out in batches.
class SortOp final : public Operator {
 public:
  explicit SortOp(ExecContext* ctx) : Operator(ctx) {}
  std::string_view name() const override { return "Sort"; }
  Result<RowBatch> Next() override;

 private:
  std::vector<std::vector<catalog::Value>> rows_;
  size_t cursor_ = 0;
  bool sorted_ = false;
};

/// \brief Truncates the stream after `limit` rows and stops pulling its
/// child — the only operator that ends a query early.
class LimitOp final : public Operator {
 public:
  LimitOp(ExecContext* ctx, uint64_t limit)
      : Operator(ctx), limit_(limit) {}
  std::string_view name() const override { return "Limit"; }
  Result<RowBatch> Next() override;

 private:
  uint64_t limit_;
  uint64_t emitted_ = 0;
};

}  // namespace ghostdb::exec

// The memory-bounded sorting core behind the relational tail (SortOp,
// DistinctOp's sort-based overflow path, TopKSortOp's large-k fallback).
//
// Rows are fixed-width encoded cells with a trailing u64 arrival sequence
// (kSpillSeqWidth) that makes every RowComparator order total, so plain
// std::sort reproduces the operators' stable (arrival-order-ties)
// semantics. While the working set fits the relational-tail budget the
// sorter is a plain in-memory permutation sort; past it, each full
// generation is sorted and written to flash as a fixed-stride row run
// (storage::RunWriter under the paper's one-buffer discipline), runs are
// merged down to the fan-in the session's RAM partition can stream
// (MergeRowRunsBy), and the result is pulled row-at-a-time through
// RowRunReaders — O(budget) secure memory regardless of input size.
//
// Nothing here touches the channel: spill runs live on the device's own
// flash, so whether (and how much) a query spills is invisible to
// Untrusted — the transcript contract is unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "device/guards.h"
#include "exec/operator.h"
#include "exec/row_run.h"

namespace ghostdb::exec {

/// \brief External-memory sorter over fixed-width encoded rows.
///
/// Lifecycle: Add() every row, Finish(), then Next() until nullptr,
/// then Close() (the destructor cleans up best-effort if the stream is
/// abandoned early, e.g. by a LIMIT above).
class ExternalRowSorter {
 public:
  /// `row_width` includes the trailing arrival sequence. `budget_rows`
  /// bounds the in-memory generation (derived from visible inputs only).
  /// With `drop_key_duplicates`, rows equal under cmp's keys collapse to
  /// their first arrival — the sort-based DISTINCT.
  ExternalRowSorter(ExecContext* ctx, uint32_t row_width, RowComparator cmp,
                    uint64_t budget_rows, bool drop_key_duplicates,
                    std::string tag);
  ~ExternalRowSorter();

  ExternalRowSorter(const ExternalRowSorter&) = delete;
  ExternalRowSorter& operator=(const ExternalRowSorter&) = delete;

  /// Partial-aggregation hook: folds `row` into `acc_row` (both row_width
  /// bytes, equal under cmp's keys), combining their aggregate state in
  /// place. acc_row keeps its own non-aggregate bytes — in particular its
  /// (smaller) arrival sequence.
  using FoldFn = std::function<Status(uint8_t* acc_row, const uint8_t* row)>;

  /// Enables run-write-time folding: when a generation spills, key-equal
  /// adjacent rows collapse into one via `fold` before hitting flash, so a
  /// run carries at most one row per distinct key — the sort-spill analog
  /// of hash-side partial aggregation. Rows with equal keys from
  /// *different* runs (and the never-spilled in-memory path) still emerge
  /// adjacent from Next(); the consumer folds those on the way out.
  /// Mutually exclusive with drop_key_duplicates.
  void set_fold(FoldFn fold) { fold_ = std::move(fold); }

  /// Appends one row (row_width bytes). Past the budget: spills the
  /// current generation (spill_enabled) or fails with ResourceExhausted.
  Status Add(const uint8_t* row);

  /// Seals the input: sorts the tail generation and, if the sorter
  /// spilled, merges runs down to a streamable fan-in.
  Status Finish();

  /// After Finish(): the next row in sorted order (valid until the next
  /// call), or nullptr at end of stream.
  Result<const uint8_t*> Next();

  /// Releases reader buffers and frees all remaining spill runs.
  Status Close();

  bool spilled() const { return !runs_.empty(); }
  uint64_t budget_rows() const { return budget_rows_; }
  const SpillStats& stats() const { return stats_; }

 private:
  /// Sorts the current generation's permutation under the total order.
  void SortGeneration();
  /// Sorts and writes the current generation as one run, then resets it.
  Status SpillGeneration();
  /// Volume defense (ExecConfig::pad_spill_runs): writes one-row dummy
  /// runs until the total run count reaches the padding mode's target —
  /// next power of two of the real count (kQuantize) or the visible
  /// worst-case generation count ceil(padding_row_bound / budget_rows)
  /// (kWorstCase). Dummies are never read or merged and are freed in
  /// Close(); they reduce the resolution of the per-sorter spill-count
  /// side channel (exact invariance would need every operator to
  /// instantiate its sorters unconditionally — the volume channel, not
  /// this one, carries the strict guarantee).
  Status PadSpillRuns();
  const uint8_t* GenRow(uint32_t index) const {
    return arena_.data() + static_cast<size_t>(index) * row_width_;
  }

  ExecContext* ctx_;
  uint32_t row_width_;
  RowComparator cmp_;
  uint64_t budget_rows_;
  bool dedup_;
  FoldFn fold_;  ///< run-write partial fold (null = write rows verbatim)
  std::string tag_;

  std::vector<uint8_t> arena_;  ///< current generation, row-major
  uint32_t gen_rows_ = 0;
  std::vector<uint32_t> perm_;  ///< sorted order of the generation
  std::vector<storage::RunRef> runs_;
  std::vector<storage::RunRef> dummy_runs_;  ///< spill-count padding
  SpillStats stats_;
  bool finished_ = false;
  bool closed_ = false;

  // Emission state (after Finish()).
  size_t emit_pos_ = 0;                     // in-memory mode cursor
  device::RamGuard reader_bufs_;        // one buffer per final run
  std::vector<std::unique_ptr<RowRunReader>> readers_;
  std::vector<uint8_t> current_;            // merge-mode output row
  std::vector<uint8_t> last_emitted_;       // dedup reference
  bool have_last_ = false;
};

/// Strict spill-run padding (ExecConfig::pad_spill_runs): writes the
/// padded-mode dummy-run signature of a sorter that never materialized —
/// an operator whose plan *could* spill but whose live input never tripped
/// the budget (or was empty), which would otherwise distinguish itself on
/// flash from an input that spilled and padded. `stride` must be the row
/// width the real sorter would have used — a pure function of the visible
/// plan, never of the live row count. No-op unless pad_spill_runs is on.
/// Folds the dummy-run stats into ctx->metrics.
Status PadUnspilledSorter(ExecContext* ctx, uint32_t stride,
                          const std::string& tag);

}  // namespace ghostdb::exec

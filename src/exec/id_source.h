// Sorted id streams: the common currency of the Secure-side operators.
// Every source exposes one-element lookahead (head) over ascending RowIds.
#pragma once

#include <memory>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/btree.h"
#include "storage/run.h"

namespace ghostdb::exec {

/// \brief Abstract ascending id stream with lookahead.
class IdSource {
 public:
  virtual ~IdSource() = default;
  /// Loads the first element. Must be called exactly once before use.
  virtual Status Prime() = 0;
  virtual bool valid() const = 0;
  virtual catalog::RowId head() const = 0;
  virtual Status Advance() = 0;
};

/// In-RAM sorted vector (Vis streams arrive through the dedicated
/// communication buffer, costing no RAM buffers — paper section 3.4).
class VectorIdSource final : public IdSource {
 public:
  explicit VectorIdSource(std::vector<catalog::RowId> ids)
      : ids_(std::move(ids)) {}
  Status Prime() override { return Status::OK(); }
  bool valid() const override { return pos_ < ids_.size(); }
  catalog::RowId head() const override { return ids_[pos_]; }
  Status Advance() override {
    ++pos_;
    return Status::OK();
  }

 private:
  std::vector<catalog::RowId> ids_;
  size_t pos_ = 0;
};

/// A climbing-index posting sublist on flash; needs one RAM buffer (or a
/// sub-buffer window in the Merge sub-buffer mode).
class PostingIdSource final : public IdSource {
 public:
  PostingIdSource(flash::FlashDevice* device, const storage::RunRef* area,
                  storage::PostingRange range, uint8_t* buffer,
                  uint32_t window_bytes = 0)
      : cursor_(device, area, range, buffer, window_bytes) {}
  Status Prime() override { return cursor_.Prime(); }
  bool valid() const override { return cursor_.valid(); }
  catalog::RowId head() const override { return cursor_.head(); }
  Status Advance() override { return cursor_.Advance(); }

 private:
  storage::PostingCursor cursor_;
};

/// A temporary sorted run on flash; needs one RAM buffer.
class RunIdSource final : public IdSource {
 public:
  RunIdSource(flash::FlashDevice* device, storage::RunRef ref,
              uint8_t* buffer, uint32_t window_bytes = 0)
      : reader_(device, std::move(ref), buffer, window_bytes) {}
  Status Prime() override { return reader_.Prime(); }
  bool valid() const override { return reader_.valid(); }
  catalog::RowId head() const override { return reader_.head(); }
  Status Advance() override { return reader_.Advance(); }

 private:
  storage::IdRunReader reader_;
};

/// The id universe [0, n): used when a query has no selective predicate on
/// the anchor path (costs no I/O — ids are implicit).
class IotaIdSource final : public IdSource {
 public:
  explicit IotaIdSource(catalog::RowId n) : n_(n) {}
  Status Prime() override { return Status::OK(); }
  bool valid() const override { return next_ < n_; }
  catalog::RowId head() const override { return next_; }
  Status Advance() override {
    ++next_;
    return Status::OK();
  }

 private:
  catalog::RowId n_;
  catalog::RowId next_ = 0;
};

}  // namespace ghostdb::exec

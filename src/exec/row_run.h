// Fixed-stride row runs on flash: materialized intermediate results such as
// the SJoin output F' (<id_anchor, id_Ti, ...> rows) and the per-table
// projection outputs (<pos, vlist, hlist> rows), plus the sorted spill runs
// of the memory-bounded relational tail (Sort/Distinct/top-K). Rows are
// packed back-to-back across page boundaries (streamed sequentially, never
// random-accessed). Id-space runs lead with a 4-byte sort key (anchor id or
// position); spill runs order by a RowComparator over encoded value cells.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/value.h"
#include "common/coding.h"
#include "common/result.h"
#include "common/status.h"
#include "device/guards.h"
#include "storage/page_allocator.h"
#include "storage/run.h"

namespace ghostdb::exec {

/// Width of the trailing u64 arrival-sequence field of a relational-tail
/// spill row (the stable-sort tie-break).
inline constexpr uint32_t kSpillSeqWidth = 8;

/// \brief Ordering over fixed-stride encoded rows: a list of typed key
/// cells (compared via catalog::CompareEncoded, each ASC or DESC) plus an
/// optional trailing arrival-sequence field (u64, always ascending) that
/// makes the order total and keeps ties stable across spill generations.
/// The legacy id-space runs order by their leading u32 instead.
class RowComparator {
 public:
  struct Key {
    uint32_t offset = 0;  ///< byte offset of the cell within the row
    catalog::DataType type = catalog::DataType::kInt32;
    uint32_t width = 4;
    bool descending = false;
  };

  /// The id-space order: ascending on the leading 4-byte key.
  static RowComparator LeadingU32();

  /// Value-space order: `keys` in sequence, then the u64 arrival sequence
  /// at `seq_offset` ascending (pass kNoSeq for none).
  static RowComparator ByKeys(std::vector<Key> keys, uint32_t seq_offset);

  static constexpr uint32_t kNoSeq = UINT32_MAX;

  /// Three-way comparison on the declared keys only (no tie-break) — what
  /// duplicate dropping considers "the same row".
  int CompareKeys(const uint8_t* a, const uint8_t* b) const;

  /// Total order: keys, then the arrival sequence (or the leading u32).
  int Compare(const uint8_t* a, const uint8_t* b) const;

 private:
  std::vector<Key> keys_;
  bool leading_u32_ = false;
  uint32_t seq_offset_ = kNoSeq;
};

/// Flash work done by the spill machinery, folded into
/// QueryMetrics::sort_spill_{runs,pages} by the owning operator.
struct SpillStats {
  uint64_t runs_written = 0;   ///< RunWriter::Finish calls (spills + merges)
  uint64_t pages_written = 0;  ///< flash pages those runs occupy
  /// Dummy runs/pages written only to pad the run count toward the volume
  /// defense's target (ExecConfig::pad_spill_runs); never read or merged,
  /// freed with the real runs.
  uint64_t padding_runs_written = 0;
  uint64_t padding_pages_written = 0;
};

/// \brief Streams fixed-stride rows out of a run, with lookahead on the
/// leading 4-byte key.
class RowRunReader {
 public:
  RowRunReader(flash::FlashDevice* device, storage::RunRef ref,
               uint32_t row_width, uint8_t* buffer)
      : reader_(device, std::move(ref), buffer), row_width_(row_width) {
    row_.resize(row_width);
  }

  Status Prime() { return Advance(); }
  bool valid() const { return has_row_; }
  /// Leading u32 of the current row (anchor id or position).
  catalog::RowId key() const { return DecodeFixed32(row_.data()); }
  const uint8_t* row() const { return row_.data(); }
  uint32_t row_width() const { return row_width_; }

  Status Advance() {
    GHOSTDB_ASSIGN_OR_RETURN(size_t n, reader_.Read(row_.data(), row_width_));
    if (n == row_width_) {
      has_row_ = true;
    } else if (n == 0) {
      has_row_ = false;
    } else {
      return Status::Corruption("torn row in row run");
    }
    return Status::OK();
  }

 private:
  storage::RunReader reader_;
  uint32_t row_width_;
  std::vector<uint8_t> row_;
  bool has_row_ = false;
};

/// Merges row runs (each sorted under `cmp`) down to at most `target_count`
/// runs, within the current free-buffer budget. Each round merges the
/// minimal number of runs that reaches the target (never more than the
/// free buffers allow), choosing the smallest runs by page count so the
/// pages rewritten per round are as few as possible. Consumed runs are
/// freed under `tag`. With `drop_key_duplicates`, rows comparing equal on the
/// declared keys collapse to the earliest (smallest tie-break) one — the
/// sort-based DISTINCT. `stats` (optional) accumulates the flash work.
Status MergeRowRunsBy(flash::FlashDevice* device, device::RamManager* ram,
                      storage::PageAllocator* allocator,
                      std::vector<storage::RunRef>* runs, uint32_t width,
                      size_t target_count, const std::string& tag,
                      const RowComparator& cmp, bool drop_key_duplicates,
                      SpillStats* stats = nullptr);

/// Merges row runs (sorted, disjoint leading-u32 keys) down to at most
/// `target_count` runs — the id-space shape (SJoin output, projection
/// position lists).
Status MergeRowRuns(flash::FlashDevice* device, device::RamManager* ram,
                    storage::PageAllocator* allocator,
                    std::vector<storage::RunRef>* runs, uint32_t width,
                    size_t target_count, const std::string& tag);

}  // namespace ghostdb::exec

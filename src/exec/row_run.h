// Fixed-stride row runs on flash: materialized intermediate results such as
// the SJoin output F' (<id_anchor, id_Ti, ...> rows) and the per-table
// projection outputs (<pos, vlist, hlist> rows). Rows are packed
// back-to-back across page boundaries (streamed sequentially, never
// random-accessed), with the leading 4 bytes always a sort key (anchor id
// or position).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/coding.h"
#include "common/result.h"
#include "common/status.h"
#include "device/ram_manager.h"
#include "storage/page_allocator.h"
#include "storage/run.h"

namespace ghostdb::exec {

/// \brief Streams fixed-stride rows out of a run, with lookahead on the
/// leading 4-byte key.
class RowRunReader {
 public:
  RowRunReader(flash::FlashDevice* device, storage::RunRef ref,
               uint32_t row_width, uint8_t* buffer)
      : reader_(device, std::move(ref), buffer), row_width_(row_width) {
    row_.resize(row_width);
  }

  Status Prime() { return Advance(); }
  bool valid() const { return has_row_; }
  /// Leading u32 of the current row (anchor id or position).
  catalog::RowId key() const { return DecodeFixed32(row_.data()); }
  const uint8_t* row() const { return row_.data(); }
  uint32_t row_width() const { return row_width_; }

  Status Advance() {
    GHOSTDB_ASSIGN_OR_RETURN(size_t n, reader_.Read(row_.data(), row_width_));
    if (n == row_width_) {
      has_row_ = true;
    } else if (n == 0) {
      has_row_ = false;
    } else {
      return Status::Corruption("torn row in row run");
    }
    return Status::OK();
  }

 private:
  storage::RunReader reader_;
  uint32_t row_width_;
  std::vector<uint8_t> row_;
  bool has_row_ = false;
};

/// Merges row runs (sorted, disjoint leading-u32 keys) down to at most
/// `target_count` runs, within the current free-buffer budget. Consumed
/// runs are freed under `tag`.
Status MergeRowRuns(flash::FlashDevice* device, device::RamManager* ram,
                    storage::PageAllocator* allocator,
                    std::vector<storage::RunRef>* runs, uint32_t width,
                    size_t target_count, const std::string& tag);

}  // namespace ghostdb::exec

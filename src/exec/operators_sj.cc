#include "exec/operators_sj.h"

#include <algorithm>
#include <set>

#include "common/coding.h"
#include "exec/row_run.h"
#include "exec/simd.h"
#include "exec/sjoin.h"
#include "storage/btree.h"
#include "storage/fixed_table.h"

namespace ghostdb::exec {

using catalog::RowId;
using catalog::TableId;
using catalog::Value;
using plan::VisStrategy;
using sql::BoundPredicate;
using sql::BoundQuery;

// ---------------------------------------------------------------------------
// HiddenSelector
// ---------------------------------------------------------------------------

std::vector<size_t> HiddenSelector::SubtreePredicates(TableId t) const {
  const auto& preds = ctx_->pipeline.hidden_preds;
  std::vector<size_t> out;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (ctx_->schema->IsAncestorOrSelf(preds[i]->table, t)) {
      out.push_back(i);
    }
  }
  return out;
}

Status HiddenSelector::CollectPredicateSublists(const BoundPredicate& pred,
                                                TableId target,
                                                MergeGroup* group) {
  const core::TableImage& image = ctx_->store->tables[pred.table];
  auto it = image.attr_indexes.find(pred.column);
  if (it == image.attr_indexes.end()) {
    // No climbing index on this attribute: fall back to a hidden-image scan
    // (ids of pred.table), then climb if needed.
    GHOSTDB_ASSIGN_OR_RETURN(std::vector<RowId> ids,
                             ScanHiddenPredicate(pred));
    if (pred.table == target) {
      group->ram_ids = std::move(ids);
      group->has_ram_ids = true;
      return Status::OK();
    }
    return ClimbIntoGroup(pred.table, target, ids, group);
  }
  const storage::BTreeRef& index = it->second;
  if (!ctx_->config->climbing_enabled && target != pred.table) {
    // Cascading baseline: resolve the selection at the self level, then
    // climb id by id through the id indexes.
    MergeGroup self_group;
    GHOSTDB_RETURN_NOT_OK(
        CollectPredicateSublists(pred, pred.table, &self_group));
    std::vector<RowId> ids;
    {
      GHOSTDB_ASSIGN_OR_RETURN(device::RamGuard buf,
                               device::RamGuard::AcquireOne(&ctx_->ram(), "cascade"));
      for (const auto& [area, range] : self_group.sublists) {
        storage::PostingCursor cursor(&ctx_->flash(), area, range,
                                      buf.data());
        GHOSTDB_RETURN_NOT_OK(cursor.Prime());
        while (cursor.valid()) {
          ids.push_back(cursor.head());
          GHOSTDB_RETURN_NOT_OK(cursor.Advance());
        }
      }
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    }
    return ClimbIntoGroup(pred.table, target, ids, group);
  }
  GHOSTDB_ASSIGN_OR_RETURN(
      uint32_t level,
      core::SecureStore::LevelFor(*ctx_->schema, pred.table, target,
                                  /*self_level=*/true));
  GHOSTDB_ASSIGN_OR_RETURN(
      auto reader,
      storage::BTreeReader::Open(&ctx_->flash(), &ctx_->ram(), &index));
  auto push_current = [&]() -> Status {
    GHOSTDB_ASSIGN_OR_RETURN(storage::BTreeEntry entry, reader->Current());
    if (entry.ranges[level].count > 0) {
      group->sublists.emplace_back(&index.postings[level],
                                   entry.ranges[level]);
    }
    return Status::OK();
  };

  switch (pred.op) {
    case catalog::CompareOp::kEq: {
      GHOSTDB_ASSIGN_OR_RETURN(bool found,
                               reader->SeekLowerBound(pred.value));
      if (!found) return Status::OK();
      GHOSTDB_ASSIGN_OR_RETURN(storage::BTreeEntry entry, reader->Current());
      if (entry.key == pred.value) {
        GHOSTDB_RETURN_NOT_OK(push_current());
      }
      return Status::OK();
    }
    case catalog::CompareOp::kGe:
    case catalog::CompareOp::kGt: {
      GHOSTDB_ASSIGN_OR_RETURN(bool found,
                               reader->SeekLowerBound(pred.value));
      if (!found) return Status::OK();
      while (true) {
        GHOSTDB_ASSIGN_OR_RETURN(storage::BTreeEntry entry,
                                 reader->Current());
        if (!(pred.op == catalog::CompareOp::kGt &&
              entry.key == pred.value)) {
          GHOSTDB_RETURN_NOT_OK(push_current());
        }
        GHOSTDB_ASSIGN_OR_RETURN(bool more, reader->Next());
        if (!more) break;
      }
      return Status::OK();
    }
    case catalog::CompareOp::kLt:
    case catalog::CompareOp::kLe:
    case catalog::CompareOp::kNe: {
      GHOSTDB_ASSIGN_OR_RETURN(bool found, reader->SeekToFirst());
      if (!found) return Status::OK();
      while (true) {
        GHOSTDB_ASSIGN_OR_RETURN(storage::BTreeEntry entry,
                                 reader->Current());
        int cmp = entry.key.Compare(pred.value);
        if (pred.op == catalog::CompareOp::kLt && cmp >= 0) break;
        if (pred.op == catalog::CompareOp::kLe && cmp > 0) break;
        if (!(pred.op == catalog::CompareOp::kNe && cmp == 0)) {
          GHOSTDB_RETURN_NOT_OK(push_current());
        }
        GHOSTDB_ASSIGN_OR_RETURN(bool more, reader->Next());
        if (!more) break;
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled predicate operator");
}

Status HiddenSelector::ClimbIntoGroup(TableId from, TableId to,
                                      const std::vector<RowId>& ids,
                                      MergeGroup* group) {
  if (from == to) {
    group->ram_ids = ids;
    group->has_ram_ids = true;
    return Status::OK();
  }
  const core::TableImage& image = ctx_->store->tables[from];
  if (!image.id_index.has_value()) {
    return Status::Internal("missing id index on " +
                            ctx_->schema->table(from).name);
  }
  GHOSTDB_ASSIGN_OR_RETURN(
      uint32_t level,
      core::SecureStore::LevelFor(*ctx_->schema, from, to,
                                  /*self_level=*/false));
  GHOSTDB_ASSIGN_OR_RETURN(
      auto reader,
      storage::BTreeReader::Open(&ctx_->flash(), &ctx_->ram(),
                                 &image.id_index.value()));
  for (RowId id : ids) {
    GHOSTDB_ASSIGN_OR_RETURN(
        bool found,
        reader->SeekLowerBound(Value::Int32(static_cast<int32_t>(id))));
    if (!found) continue;
    GHOSTDB_ASSIGN_OR_RETURN(storage::BTreeEntry entry, reader->Current());
    if (entry.key.AsInt32() != static_cast<int32_t>(id)) continue;
    if (entry.ranges[level].count > 0) {
      group->sublists.emplace_back(&image.id_index->postings[level],
                                   entry.ranges[level]);
    }
  }
  return Status::OK();
}

Result<std::vector<RowId>> HiddenSelector::ScanHiddenPredicate(
    const BoundPredicate& pred) {
  const core::TableImage& image = ctx_->store->tables[pred.table];
  if (!image.hidden_image.has_value()) {
    return Status::Internal("hidden predicate on table without hidden image");
  }
  const auto& col = ctx_->schema->table(pred.table).columns[pred.column];
  uint32_t offset = image.hidden_offsets[pred.column];
  GHOSTDB_ASSIGN_OR_RETURN(device::RamGuard buf,
                           device::RamGuard::AcquireOne(&ctx_->ram(), "hidden-scan"));
  storage::FixedTableReader reader(&ctx_->flash(),
                                   image.hidden_image.value(), buf.data());
  std::vector<uint8_t> row(image.hidden_image->row_width);
  std::vector<RowId> out;
  // Fast path: compare encoded cells against the literal's encoding — no
  // Value per row. Encode() truncates overlong string literals, so those
  // keep the decode path to preserve full-literal comparison semantics.
  bool encoded_ok = pred.value.type() == col.type &&
                    (col.type != catalog::DataType::kString ||
                     pred.value.AsString().size() <= col.width);
  if (encoded_ok) {
    std::vector<uint8_t> literal(col.width);
    pred.value.Encode(literal.data(), col.width);
    // Page-span scan: the SIMD kernel sweeps every row of the buffered
    // page in place. Pages load in the same ascending order as a
    // row-by-row scan, so flash stats (and the simulated cost) are
    // unchanged.
    uint32_t stride = image.hidden_image->row_width;
    RowId r = 0;
    while (r < image.row_count) {
      GHOSTDB_ASSIGN_OR_RETURN(storage::FixedTableReader::Span span,
                               reader.RowSpan(r));
      size_t base = out.size();
      out.resize(base + span.rows);
      size_t count = simd::FilterEncoded(col.type, col.width,
                                         span.data + offset, stride,
                                         span.rows, literal.data(), pred.op,
                                         r, out.data() + base);
      out.resize(base + count);
      r += span.rows;
    }
    return out;
  }
  for (RowId r = 0; r < image.row_count; ++r) {
    GHOSTDB_RETURN_NOT_OK(reader.ReadRow(r, row.data()));
    Value v = Value::Decode(row.data() + offset, col.type, col.width);
    if (catalog::EvalCompare(v, pred.op, pred.value)) out.push_back(r);
  }
  return out;
}

Status HiddenSelector::CrossIntersect(const VisTable& vt,
                                      const std::vector<size_t>& pred_indices,
                                      std::vector<RowId>* out) {
  std::vector<MergeGroup> groups;
  MergeGroup vis_group;
  vis_group.ram_ids = vt.ids;
  vis_group.has_ram_ids = true;
  groups.push_back(std::move(vis_group));
  for (size_t pi : pred_indices) {
    MergeGroup g;
    GHOSTDB_RETURN_NOT_OK(CollectPredicateSublists(
        *ctx_->pipeline.hidden_preds[pi], vt.table, &g));
    groups.push_back(std::move(g));
  }
  MergeExec merge(&ctx_->flash(), &ctx_->ram(), ctx_->allocator,
                  &ctx_->clock(), ctx_->config->merge_policy);
  auto scope = ctx_->clock().Enter("merge");
  GHOSTDB_RETURN_NOT_OK(merge.Run(
      std::move(groups),
      [&](RowId id) {
        out->push_back(id);
        return Status::OK();
      },
      /*reserve_buffers=*/0));
  ctx_->metrics->merge.reduction_rounds += merge.stats().reduction_rounds;
  ctx_->metrics->merge.reduction_ids_written +=
      merge.stats().reduction_ids_written;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// VisSelectOp
// ---------------------------------------------------------------------------

Status VisSelectOp::Open() {
  GHOSTDB_RETURN_NOT_OK(Operator::Open());
  PipelineState& state = ctx_->pipeline;
  const BoundQuery& query = *ctx_->query;

  // One Vis request per table with visible predicates, in FROM order —
  // fixed by the (visible) query text, so the request pattern cannot
  // depend on Hidden data.
  for (TableId t : query.tables) {
    if (!query.HasVisiblePredicateOn(t)) continue;
    VisTable vt;
    vt.table = t;
    auto it = ctx_->choice->vis.find(t);
    vt.strategy = it != ctx_->choice->vis.end()
                      ? it->second
                      : VisStrategy::kCrossPreFilter;
    GHOSTDB_ASSIGN_OR_RETURN(
        vt.ids,
        ctx_->untrusted->ServeVisibleIds(query, t, ctx_->vis_prefetch));
    state.vis_tables.push_back(std::move(vt));
  }

  // Hidden predicates with fold bookkeeping.
  state.hidden_preds.clear();
  for (const auto& p : query.predicates) {
    if (p.hidden && !p.on_id) state.hidden_preds.push_back(&p);
  }
  state.folded.assign(state.hidden_preds.size(), false);

  // Apply the id-list side of each table's strategy.
  HiddenSelector selector(ctx_);
  TableId anchor = query.anchor;
  for (auto& vt : state.vis_tables) {
    std::vector<size_t> foldable = selector.SubtreePredicates(vt.table);
    bool can_cross = !foldable.empty();
    VisStrategy strategy = vt.strategy;
    if (!can_cross && strategy == VisStrategy::kCrossPreFilter) {
      strategy = VisStrategy::kPreFilter;
    }
    if (!can_cross && strategy == VisStrategy::kCrossPostFilter) {
      strategy = VisStrategy::kPostFilter;
    }
    if (!can_cross && strategy == VisStrategy::kCrossPostSelect) {
      strategy = VisStrategy::kPostSelect;
    }
    switch (strategy) {
      case VisStrategy::kPreFilter: {
        MergeGroup g;
        GHOSTDB_RETURN_NOT_OK(
            selector.ClimbIntoGroup(vt.table, anchor, vt.ids, &g));
        state.anchor_groups.push_back(std::move(g));
        break;
      }
      case VisStrategy::kCrossPreFilter: {
        std::vector<RowId> L;
        GHOSTDB_RETURN_NOT_OK(selector.CrossIntersect(vt, foldable, &L));
        for (size_t pi : foldable) state.folded[pi] = true;
        MergeGroup g;
        GHOSTDB_RETURN_NOT_OK(
            selector.ClimbIntoGroup(vt.table, anchor, L, &g));
        state.anchor_groups.push_back(std::move(g));
        break;
      }
      case VisStrategy::kPostFilter:
      case VisStrategy::kCrossPostFilter: {
        if (strategy == VisStrategy::kCrossPostFilter) {
          GHOSTDB_RETURN_NOT_OK(
              selector.CrossIntersect(vt, foldable, &vt.filter_basis));
        } else {
          vt.filter_basis = vt.ids;
        }
        vt.has_filter_basis = true;  // BloomBuildOp takes it from here
        break;
      }
      case VisStrategy::kPostSelect:
      case VisStrategy::kCrossPostSelect:
        vt.post_select = true;
        if (strategy == VisStrategy::kCrossPostSelect && can_cross) {
          // Intersect first: the in-RAM id set shrinks, so the exact
          // selection needs fewer chunks/passes over F'. Still exact: F'
          // rows already satisfy the folded hidden predicates.
          std::vector<RowId> basis;
          GHOSTDB_RETURN_NOT_OK(
              selector.CrossIntersect(vt, foldable, &basis));
          vt.ids = std::move(basis);
        }
        break;
      case VisStrategy::kNoFilter:
        vt.need_exact_at_projection = true;
        break;
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// BloomBuildOp
// ---------------------------------------------------------------------------

Status BloomBuildOp::Open() {
  GHOSTDB_RETURN_NOT_OK(Operator::Open());
  auto& ram = ctx_->ram();
  for (auto& vt : ctx_->pipeline.vis_tables) {
    if (!vt.has_filter_basis) continue;
    const std::vector<RowId>& basis = vt.filter_basis;
    // Feasibility: enough RAM for an effective filter?
    uint32_t max_buffers = std::min<uint32_t>(
        ctx_->config->bloom_max_buffers,
        ram.free_buffers() > 8 ? ram.free_buffers() - 8 : 1);
    double achievable_bpe =
        basis.empty()
            ? 8.0
            : static_cast<double>(max_buffers) * ram.buffer_size() * 8 /
                  static_cast<double>(basis.size());
    achievable_bpe =
        std::min(achievable_bpe, ctx_->config->bloom_target_bpe);
    if (achievable_bpe < ctx_->config->bloom_min_bpe) {
      // The filter would pass more noise than signal: postpone the
      // selection to projection time (paper Fig 10).
      vt.need_exact_at_projection = true;
      continue;
    }
    GHOSTDB_ASSIGN_OR_RETURN(
        BloomFilter bloom,
        BloomFilter::Create(&ram, basis.size(), max_buffers,
                            ctx_->config->bloom_target_bpe));
    for (RowId id : basis) bloom.Insert(id);
    ctx_->metrics->bloom_fpr_estimate =
        std::max(ctx_->metrics->bloom_fpr_estimate,
                 bloom.EstimatedFpr(basis.size()));
    vt.bloom.emplace(std::move(bloom));
    vt.need_exact_at_projection = true;  // bloom passes false positives
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// MergeOp
// ---------------------------------------------------------------------------

Status MergeOp::Open() {
  GHOSTDB_RETURN_NOT_OK(Operator::Open());
  PipelineState& state = ctx_->pipeline;
  HiddenSelector selector(ctx_);

  // Unfolded hidden predicates contribute anchor-level groups.
  for (size_t i = 0; i < state.hidden_preds.size(); ++i) {
    if (state.folded[i]) continue;
    MergeGroup g;
    GHOSTDB_RETURN_NOT_OK(selector.CollectPredicateSublists(
        *state.hidden_preds[i], ctx_->query->anchor, &g));
    state.anchor_groups.push_back(std::move(g));
  }

  if (state.anchor_groups.empty()) {
    // Nothing restricts the anchor path: the full id universe.
    MergeGroup g;
    g.has_iota = true;
    g.iota_n = static_cast<RowId>(
        ctx_->store->tables[ctx_->query->anchor].row_count);
    state.anchor_groups.push_back(std::move(g));
  }
  return Status::OK();
}

Status MergeOp::Drive(const std::function<Status(RowId)>& sink) {
  MergeExec merge(&ctx_->flash(), &ctx_->ram(), ctx_->allocator,
                  &ctx_->clock(), ctx_->config->merge_policy);
  {
    auto merge_scope = ctx_->clock().Enter("merge");
    GHOSTDB_RETURN_NOT_OK(merge.Run(std::move(ctx_->pipeline.anchor_groups),
                                    sink, /*reserve_buffers=*/0));
  }
  ctx_->pipeline.anchor_groups.clear();
  MergeStats& stats = ctx_->metrics->merge;
  stats.ids_emitted += merge.stats().ids_emitted;
  stats.reduction_rounds += merge.stats().reduction_rounds;
  stats.reduction_ids_written += merge.stats().reduction_ids_written;
  stats.peak_streams =
      std::max(stats.peak_streams, merge.stats().peak_streams);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SJoinOp
// ---------------------------------------------------------------------------

Status SJoinOp::Open() {
  GHOSTDB_RETURN_NOT_OK(Operator::Open());
  PipelineState& state = ctx_->pipeline;
  const BoundQuery& query = *ctx_->query;
  TableId anchor = query.anchor;
  const core::TableImage& anchor_image = ctx_->store->tables[anchor];
  auto& ram = ctx_->ram();
  auto& clock = ctx_->clock();
  SjState& sj = state.sj;

  // Which non-anchor tables need id columns in F'.
  {
    std::set<TableId> cols;
    for (TableId t : query.tables) {
      if (t == anchor) continue;
      if (query.ProjectsTable(t)) cols.insert(t);
    }
    for (auto& vt : state.vis_tables) {
      if (vt.table == anchor) continue;
      if (vt.bloom.has_value() || vt.post_select ||
          vt.need_exact_at_projection) {
        cols.insert(vt.table);
      }
    }
    sj.column_tables.assign(cols.begin(), cols.end());
  }
  sj.row_width = 4 + 4 * static_cast<uint32_t>(sj.column_tables.size());
  bool need_sjoin = !sj.column_tables.empty();

  // Probe offsets for bloom-filtered tables.
  for (auto& vt : state.vis_tables) {
    if (!vt.bloom.has_value()) continue;
    auto off = sj.ColumnOffset(vt.table, anchor);
    if (!off.has_value()) {
      return Status::Internal("bloom table missing from F' columns");
    }
    vt.probe_offset = *off;
  }

  GHOSTDB_ASSIGN_OR_RETURN(device::RamGuard out_buf,
                           device::RamGuard::AcquireOne(&ram, "fprime-writer"));
  storage::RunWriter writer(&ctx_->flash(), ctx_->allocator, out_buf.data(),
                            "fprime");

  if (need_sjoin) {
    if (!anchor_image.skt.has_value()) {
      return Status::Internal("anchor table has no SKT");
    }
    std::vector<uint32_t> slots;
    for (TableId t : sj.column_tables) {
      auto slot = anchor_image.SktSlotOf(t);
      if (!slot.has_value()) {
        return Status::Internal("table missing from anchor SKT");
      }
      slots.push_back(*slot);
    }
    GHOSTDB_ASSIGN_OR_RETURN(device::RamGuard skt_buf,
                             device::RamGuard::AcquireOne(&ram, "sjoin-skt"));
    SJoinStage sjoin(
        &ctx_->flash(), &anchor_image.skt.value(), slots, skt_buf.data(),
        [&](const uint8_t* row, uint32_t width) -> Status {
          // ProbeBF stages, pipelined.
          for (auto& vt : state.vis_tables) {
            if (vt.bloom.has_value() &&
                !vt.bloom->MightContain(
                    DecodeFixed32(row + vt.probe_offset))) {
              return Status::OK();
            }
          }
          auto store_scope = clock.Enter("store");
          sj.rows += 1;
          return writer.Append(row, width);
        });
    GHOSTDB_RETURN_NOT_OK(merge_->Drive([&](RowId id) {
      auto sjoin_scope = clock.Enter("sjoin");
      return sjoin.Consume(id);
    }));
  } else {
    GHOSTDB_RETURN_NOT_OK(merge_->Drive([&](RowId id) {
      sj.rows += 1;
      uint8_t enc[4];
      EncodeFixed32(enc, id);
      return writer.Append(enc, 4);
    }));
  }
  GHOSTDB_ASSIGN_OR_RETURN(sj.fprime, writer.Finish());
  out_buf.Release();

  // Release QEP_SJ blooms: projection rebuilds its own (paper section 5).
  for (auto& vt : state.vis_tables) vt.bloom.reset();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// PostSelectOp
// ---------------------------------------------------------------------------

Status PostSelectOp::Open() {
  GHOSTDB_RETURN_NOT_OK(Operator::Open());
  PipelineState& state = ctx_->pipeline;
  SjState& sj = state.sj;
  for (auto& vt : state.vis_tables) {
    if (!vt.post_select) continue;
    auto off = sj.ColumnOffset(vt.table, ctx_->query->anchor);
    if (!off.has_value()) {
      return Status::Internal("post-select table missing from F'");
    }
    auto scope = ctx_->clock().Enter("post-select");
    GHOSTDB_ASSIGN_OR_RETURN(SjState filtered, Filter(sj, *off, vt.ids));
    filtered.column_tables = sj.column_tables;
    filtered.row_width = sj.row_width;
    GHOSTDB_RETURN_NOT_OK(
        storage::FreeRun(ctx_->allocator, sj.fprime, "fprime"));
    sj.fprime = std::move(filtered.fprime);
    sj.rows = filtered.rows;
  }
  return Status::OK();
}

Result<SjState> PostSelectOp::Filter(const SjState& sj, uint32_t probe_offset,
                                     const std::vector<RowId>& ids) {
  auto& ram = ctx_->ram();
  // Chunked exact filtering: load as many probe ids into RAM as fit, scan
  // F' per chunk, merge the per-chunk outputs back into anchor-id order.
  uint32_t free = ram.free_buffers();
  if (free < 4) {
    return Status::ResourceExhausted("post-select needs 4 buffers");
  }
  GHOSTDB_ASSIGN_OR_RETURN(device::RamGuard chunk_buf,
                           device::RamGuard::Acquire(&ram, free - 3, "post-select-chunk"));
  size_t chunk_capacity = chunk_buf.size() / 4;
  GHOSTDB_ASSIGN_OR_RETURN(device::RamGuard io_bufs,
                           device::RamGuard::Acquire(&ram, 2, "post-select-io"));

  std::vector<storage::RunRef> chunk_runs;
  uint64_t kept = 0;
  for (size_t base = 0; base < std::max<size_t>(ids.size(), 1);
       base += chunk_capacity) {
    size_t end = std::min(ids.size(), base + chunk_capacity);
    RowRunReader reader(&ctx_->flash(), sj.fprime, sj.row_width,
                        io_bufs.data());
    GHOSTDB_RETURN_NOT_OK(reader.Prime());
    storage::RunWriter writer(&ctx_->flash(), ctx_->allocator,
                              io_bufs.data() + ram.buffer_size(), "fprime");
    while (reader.valid()) {
      RowId probe = DecodeFixed32(reader.row() + probe_offset);
      bool hit = std::binary_search(ids.begin() + static_cast<long>(base),
                                    ids.begin() + static_cast<long>(end),
                                    probe);
      if (hit) {
        GHOSTDB_RETURN_NOT_OK(writer.Append(reader.row(), sj.row_width));
        kept += 1;
      }
      GHOSTDB_RETURN_NOT_OK(reader.Advance());
    }
    GHOSTDB_ASSIGN_OR_RETURN(storage::RunRef run, writer.Finish());
    chunk_runs.push_back(std::move(run));
    if (ids.empty()) break;
  }
  chunk_buf.Release();
  io_bufs.Release();
  GHOSTDB_RETURN_NOT_OK(MergeRowRuns(&ctx_->flash(), &ram, ctx_->allocator,
                                     &chunk_runs, sj.row_width, 1,
                                     "fprime"));
  SjState out;
  out.fprime = chunk_runs.empty() ? storage::RunRef{} : chunk_runs[0];
  out.rows = kept;
  return out;
}

}  // namespace ghostdb::exec

#include "exec/operator.h"

#include "exec/operators_project.h"
#include "exec/operators_rel.h"
#include "exec/operators_sj.h"

namespace ghostdb::exec {

Status ValidateExecConfig(const ExecConfig& config) {
  if (config.batch_bytes == 0) {
    return Status::InvalidArgument("ExecConfig.batch_bytes must be nonzero");
  }
  if (config.batch_bytes > (1ull << 30)) {
    return Status::InvalidArgument(
        "ExecConfig.batch_bytes is absurd (> 1 GiB); the value-level "
        "operators size ColumnBatches from it");
  }
  if (config.min_batch_rows == 0 ||
      config.min_batch_rows > config.max_batch_rows) {
    return Status::InvalidArgument(
        "ExecConfig batch-row clamp is inverted: need 1 <= min_batch_rows "
        "<= max_batch_rows");
  }
  if (config.worker_threads > 64) {
    return Status::InvalidArgument(
        "ExecConfig.worker_threads > 64: morsel shards would be smaller "
        "than a cache line's worth of useful work");
  }
  if (config.pad_spill_runs &&
      config.volume_padding == VolumePadding::kOff) {
    return Status::InvalidArgument(
        "ExecConfig.pad_spill_runs requires a volume_padding mode: padding "
        "spill-run counts while exposing exact result volumes defends the "
        "narrow channel and leaves the wide one open");
  }
  if (config.volume_padding != VolumePadding::kOff &&
      config.padding_dummy_row_cap == 0) {
    return Status::InvalidArgument(
        "ExecConfig.padding_dummy_row_cap must be nonzero when a "
        "volume_padding mode is on: a zero cap silently disables the "
        "defense the mode promises");
  }
  return Status::OK();
}

Status Operator::Open() {
  for (auto& child : children_) {
    GHOSTDB_RETURN_NOT_OK(child->Open());
  }
  return Status::OK();
}

Status Operator::Close() {
  for (auto& child : children_) {
    GHOSTDB_RETURN_NOT_OK(child->Close());
  }
  return Status::OK();
}

std::optional<uint32_t> SjState::ColumnOffset(catalog::TableId t,
                                              catalog::TableId anchor) const {
  if (t == anchor) return 0u;
  for (uint32_t i = 0; i < column_tables.size(); ++i) {
    if (column_tables[i] == t) return 4 + 4 * i;
  }
  return std::nullopt;
}

MetricSnapshot MetricSnapshot::Take(device::SecureDevice* device) {
  MetricSnapshot snap;
  snap.clock_ns = device->clock().now();
  snap.categories = device->clock().categories();
  snap.flash = device->flash().stats();
  snap.bytes_to_secure =
      device->channel().BytesMoved(device::Direction::kToSecure);
  snap.bytes_to_untrusted =
      device->channel().BytesMoved(device::Direction::kToUntrusted);
  snap.flash_retries = device->fault_injector().flash_retries();
  snap.faults_injected = device->fault_injector().faults_injected();
  return snap;
}

void QueryMetrics::Accumulate(const QueryMetrics& other) {
  total_ns += other.total_ns;
  for (const auto& [category, ns] : other.categories) {
    categories[category] += ns;
  }
  flash.pages_read += other.flash.pages_read;
  flash.pages_written += other.flash.pages_written;
  flash.bytes_transferred += other.flash.bytes_transferred;
  flash.blocks_erased += other.flash.blocks_erased;
  flash.gc_page_copies += other.flash.gc_page_copies;
  flash.trims += other.flash.trims;
  bytes_to_secure += other.bytes_to_secure;
  bytes_to_untrusted += other.bytes_to_untrusted;
  qepsj_rows += other.qepsj_rows;
  result_rows += other.result_rows;
  peak_ram_buffers = std::max(peak_ram_buffers, other.peak_ram_buffers);
  merge.reduction_rounds += other.merge.reduction_rounds;
  merge.reduction_ids_written += other.merge.reduction_ids_written;
  merge.ids_emitted += other.merge.ids_emitted;
  merge.peak_streams = std::max(merge.peak_streams, other.merge.peak_streams);
  bloom_fpr_estimate = std::max(bloom_fpr_estimate, other.bloom_fpr_estimate);
  plan_cache_hits += other.plan_cache_hits;
  plan_cache_misses += other.plan_cache_misses;
  plan_cache_replans += other.plan_cache_replans;
  sort_spill_runs += other.sort_spill_runs;
  sort_spill_pages += other.sort_spill_pages;
  topk_short_circuits += other.topk_short_circuits;
  observed_volume += other.observed_volume;
  padding_rows += other.padding_rows;
  padding_spill_runs += other.padding_spill_runs;
  flash_retries += other.flash_retries;
  faults_injected += other.faults_injected;
}

void MetricSnapshot::Delta(device::SecureDevice* device,
                           QueryMetrics* metrics) const {
  metrics->total_ns = device->clock().now() - clock_ns;
  metrics->categories.clear();
  for (const auto& [k, v] : device->clock().categories()) {
    auto it = categories.find(k);
    SimNanos before = it == categories.end() ? 0 : it->second;
    if (v > before) metrics->categories[k] = v - before;
  }
  metrics->flash = device->flash().stats() - flash;
  metrics->bytes_to_secure =
      device->channel().BytesMoved(device::Direction::kToSecure) -
      bytes_to_secure;
  metrics->bytes_to_untrusted =
      device->channel().BytesMoved(device::Direction::kToUntrusted) -
      bytes_to_untrusted;
  metrics->flash_retries =
      device->fault_injector().flash_retries() - flash_retries;
  metrics->faults_injected =
      device->fault_injector().faults_injected() - faults_injected;
}

namespace {

Result<std::unique_ptr<Operator>> BuildNode(ExecContext* ctx,
                                            const plan::PhysicalPlan& plan,
                                            int idx) {
  if (idx < 0 || static_cast<size_t>(idx) >= plan.nodes.size()) {
    return Status::Internal("physical plan node index out of range");
  }
  const plan::PhysicalNode& node = plan.nodes[idx];
  // Gather legs of a sharded scatter-gather: the subtree below the fan-out
  // boundary already ran per shard, so substitute its combined output —
  // the projection becomes a GatherSourceOp over the seq-merged row
  // stream, and an aggregation root is built childless (it seeds from the
  // combined shard partials instead of pulling input).
  if (ctx->gather_rows != nullptr &&
      (node.op == plan::PhysicalOp::kProject ||
       node.op == plan::PhysicalOp::kBruteForceProject)) {
    return std::unique_ptr<Operator>(std::make_unique<GatherSourceOp>(ctx));
  }
  bool gather_agg_leaf = ctx->gather_partials != nullptr &&
                         (node.op == plan::PhysicalOp::kAggregate ||
                          node.op == plan::PhysicalOp::kGroupAggregate);
  std::vector<std::unique_ptr<Operator>> kids;
  if (gather_agg_leaf) {
    if (node.op == plan::PhysicalOp::kAggregate) {
      return std::unique_ptr<Operator>(std::make_unique<AggregateOp>(ctx));
    }
    return std::unique_ptr<Operator>(std::make_unique<GroupAggregateOp>(ctx));
  }
  for (int c : node.children) {
    GHOSTDB_ASSIGN_OR_RETURN(std::unique_ptr<Operator> kid,
                             BuildNode(ctx, plan, c));
    kids.push_back(std::move(kid));
  }

  std::unique_ptr<Operator> op;
  switch (node.op) {
    case plan::PhysicalOp::kVisSelect:
      op = std::make_unique<VisSelectOp>(ctx);
      break;
    case plan::PhysicalOp::kBloomBuild:
      op = std::make_unique<BloomBuildOp>(ctx);
      break;
    case plan::PhysicalOp::kMerge:
      op = std::make_unique<MergeOp>(ctx);
      break;
    case plan::PhysicalOp::kSJoin: {
      // SJoin drives its Merge child through a push sink (the paper's
      // pipelined composition), so it needs the typed child.
      if (kids.size() != 1 ||
          plan.nodes[node.children[0]].op != plan::PhysicalOp::kMerge) {
        return Status::Internal("SJoin node requires a Merge child");
      }
      op = std::make_unique<SJoinOp>(
          ctx, static_cast<MergeOp*>(kids[0].get()));
      break;
    }
    case plan::PhysicalOp::kPostSelect:
      op = std::make_unique<PostSelectOp>(ctx);
      break;
    case plan::PhysicalOp::kProject:
      op = std::make_unique<ProjectOp>(
          ctx, plan.choice.project == plan::ProjectAlgo::kProject);
      break;
    case plan::PhysicalOp::kBruteForceProject:
      op = std::make_unique<BruteForceProjectOp>(ctx);
      break;
    case plan::PhysicalOp::kAggregate:
      op = std::make_unique<AggregateOp>(ctx);
      break;
    case plan::PhysicalOp::kGroupAggregate:
      op = std::make_unique<GroupAggregateOp>(ctx);
      break;
    case plan::PhysicalOp::kDistinct:
      op = std::make_unique<DistinctOp>(ctx);
      break;
    case plan::PhysicalOp::kSort:
      op = std::make_unique<SortOp>(ctx);
      break;
    case plan::PhysicalOp::kTopKSort:
      // Like kLimit, k is a literal the cached (shape-keyed) plan
      // normalizes away — take it from the live bound query.
      op = std::make_unique<TopKSortOp>(
          ctx, ctx->query->limit.value_or(node.limit));
      break;
    case plan::PhysicalOp::kLimit:
      // The limit is a literal, so a cached plan (shape-keyed, literals
      // normalized) must take it from the live bound query.
      op = std::make_unique<LimitOp>(
          ctx, ctx->query->limit.value_or(node.limit));
      break;
    case plan::PhysicalOp::kVolumePad:
      op = std::make_unique<VolumePadOp>(ctx);
      break;
  }
  if (op == nullptr) {
    return Status::Internal("unknown physical operator");
  }
  for (auto& kid : kids) op->AddChild(std::move(kid));
  return op;
}

}  // namespace

Result<std::unique_ptr<Operator>> BuildOperatorTree(
    ExecContext* ctx, const plan::PhysicalPlan& plan) {
  if (plan.root < 0) {
    return Status::Internal("physical plan has no root");
  }
  return BuildNode(ctx, plan, plan.root);
}

}  // namespace ghostdb::exec

// The Merge operator (paper sections 3.3-3.4): evaluates
//   (L1 ∩ L2 ∩ ... ∩ Lk)    where each Li = (Li1 ∪ Li2 ∪ ... ∪ Lij)
// over sorted id (sub)lists, in bounded RAM.
//
// Every flash-resident sublist/run needs one RAM buffer to stream. When the
// total number of streams exceeds the buffers available, Merge first runs a
// REDUCTION PHASE (the paper's alternative 1): it loads as many ids of one
// group as fit in RAM, sorts them, writes them back as a single sorted run,
// and repeats — shrinking the group's stream count until everything fits.
// (Alternative 2 — sub-buffer splitting — is implemented as an option for
// the ablation bench; it trades extra page reads for avoiding temp writes.)
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "device/guards.h"
#include "exec/id_source.h"
#include "flash/flash.h"
#include "storage/btree.h"
#include "storage/page_allocator.h"
#include "storage/run.h"

namespace ghostdb::exec {

/// One union group: sublists from climbing indexes, temporary sorted runs,
/// and/or an in-RAM sorted id list (a Vis stream).
struct MergeGroup {
  /// Climbing-index sublists: (postings area, range). Sorted individually.
  std::vector<std::pair<const storage::RunRef*, storage::PostingRange>>
      sublists;
  /// Temporary sorted runs (consumed and freed by Merge).
  std::vector<storage::RunRef> runs;
  /// In-RAM sorted ids (arrives via the dedicated comm buffer: no RAM
  /// buffer charge). At most one per group.
  std::vector<catalog::RowId> ram_ids;
  bool has_ram_ids = false;
  /// The id universe [0, iota_n): free, implicit ids (used when no
  /// predicate restricts the anchor path).
  catalog::RowId iota_n = 0;
  bool has_iota = false;

  uint64_t TotalIds() const;
  size_t FlashStreams() const { return sublists.size() + runs.size(); }
};

/// How Merge copes with more streams than buffers.
enum class MergeOverflowPolicy {
  kReduction,   ///< paper alternative 1: pre-union sublists into runs
  kSubBuffer,   ///< paper alternative 2: split buffers into sub-buffers
};

/// Execution statistics (observable costs for tests and benches).
struct MergeStats {
  uint32_t reduction_rounds = 0;
  uint64_t reduction_ids_written = 0;
  uint64_t ids_emitted = 0;
  uint32_t peak_streams = 0;
};

/// \brief RAM-bounded n-ary intersection-of-unions over sorted id streams.
class MergeExec {
 public:
  MergeExec(flash::FlashDevice* device, device::RamManager* ram,
            storage::PageAllocator* allocator, SimClock* clock,
            MergeOverflowPolicy policy = MergeOverflowPolicy::kReduction)
      : device_(device),
        ram_(ram),
        allocator_(allocator),
        clock_(clock),
        policy_(policy) {}

  /// Runs the merge; emits ascending, deduplicated ids that appear in every
  /// group. `reserve_buffers` RAM buffers are left free for downstream
  /// pipelined operators. Groups' temporary runs are freed.
  Status Run(std::vector<MergeGroup> groups,
             const std::function<Status(catalog::RowId)>& sink,
             uint32_t reserve_buffers = 0);

  const MergeStats& stats() const { return stats_; }

 private:
  /// Reduces `group` so it uses at most `target_streams` flash streams.
  Status ReduceGroup(MergeGroup* group, size_t target_streams);

  /// Final streaming phase; one buffer (or sub-buffer) per flash stream.
  Status StreamingMerge(std::vector<MergeGroup>& groups,
                        const std::function<Status(catalog::RowId)>& sink,
                        uint32_t usable_buffers);

  flash::FlashDevice* device_;
  device::RamManager* ram_;
  storage::PageAllocator* allocator_;
  SimClock* clock_;
  MergeOverflowPolicy policy_;
  MergeStats stats_;
};

}  // namespace ghostdb::exec

#include "exec/row_run.h"

#include <algorithm>
#include <memory>
#include <numeric>

namespace ghostdb::exec {

RowComparator RowComparator::LeadingU32() {
  RowComparator cmp;
  cmp.leading_u32_ = true;
  return cmp;
}

RowComparator RowComparator::ByKeys(std::vector<Key> keys,
                                    uint32_t seq_offset) {
  RowComparator cmp;
  cmp.keys_ = std::move(keys);
  cmp.seq_offset_ = seq_offset;
  return cmp;
}

int RowComparator::CompareKeys(const uint8_t* a, const uint8_t* b) const {
  if (leading_u32_) {
    uint32_t ka = DecodeFixed32(a), kb = DecodeFixed32(b);
    return ka < kb ? -1 : ka > kb ? 1 : 0;
  }
  for (const Key& key : keys_) {
    int cmp = catalog::CompareEncoded(key.type, key.width, a + key.offset,
                                      b + key.offset);
    if (cmp != 0) return key.descending ? -cmp : cmp;
  }
  return 0;
}

int RowComparator::Compare(const uint8_t* a, const uint8_t* b) const {
  int cmp = CompareKeys(a, b);
  if (cmp != 0 || seq_offset_ == kNoSeq) return cmp;
  uint64_t sa = DecodeFixed64(a + seq_offset_);
  uint64_t sb = DecodeFixed64(b + seq_offset_);
  return sa < sb ? -1 : sa > sb ? 1 : 0;
}

Status MergeRowRunsBy(flash::FlashDevice* device, device::RamManager* ram,
                      storage::PageAllocator* allocator,
                      std::vector<storage::RunRef>* runs, uint32_t width,
                      size_t target_count, const std::string& tag,
                      const RowComparator& cmp, bool drop_key_duplicates,
                      SpillStats* stats) {
  std::vector<uint8_t> last_emitted;
  while (runs->size() > target_count) {
    uint32_t free = ram->free_buffers();
    if (free < 3) {
      return Status::ResourceExhausted("row-run merge needs 3 buffers");
    }
    // Cost-chosen merge width: one round merging `take` runs into one
    // shrinks the count by take - 1, so merging more than (excess + 1)
    // runs rewrites pages that could have streamed straight into the final
    // fan-in merge. Take exactly what reaching target_count needs (capped
    // by the reader buffers available), and take the *smallest* runs so
    // the rewritten page count per round is minimal. The selection depends
    // only on run page counts already on this device's flash — never on
    // row values — so the merge structure stays deterministic and off the
    // channel.
    size_t excess = runs->size() - target_count;
    size_t take = std::min<size_t>(free - 1, excess + 1);
    std::vector<size_t> order(runs->size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return (*runs)[a].page_count() < (*runs)[b].page_count();
    });
    std::vector<size_t> picked(order.begin(),
                               order.begin() + static_cast<long>(take));
    std::sort(picked.begin(), picked.end());
    GHOSTDB_ASSIGN_OR_RETURN(
        device::RamGuard bufs,
        device::RamGuard::Acquire(ram, static_cast<uint32_t>(take) + 1, "rowrun-merge"));
    std::vector<std::unique_ptr<RowRunReader>> readers;
    for (size_t i = 0; i < take; ++i) {
      readers.push_back(std::make_unique<RowRunReader>(
          device, (*runs)[picked[i]], width,
          bufs.data() + i * ram->buffer_size()));
      GHOSTDB_RETURN_NOT_OK(readers.back()->Prime());
    }
    storage::RunWriter writer(device, allocator,
                              bufs.data() + take * ram->buffer_size(), tag);
    bool emitted_any = false;
    last_emitted.clear();
    while (true) {
      RowRunReader* best = nullptr;
      for (auto& r : readers) {
        if (r->valid() &&
            (best == nullptr || cmp.Compare(r->row(), best->row()) < 0)) {
          best = r.get();
        }
      }
      if (best == nullptr) break;
      // Under total order the earliest-arrived of a duplicate group pops
      // first, so dropping later key-equal rows keeps the first occurrence.
      bool duplicate = drop_key_duplicates && emitted_any &&
                       cmp.CompareKeys(best->row(), last_emitted.data()) == 0;
      if (!duplicate) {
        GHOSTDB_RETURN_NOT_OK(writer.Append(best->row(), width));
        if (drop_key_duplicates) {
          last_emitted.assign(best->row(), best->row() + width);
          emitted_any = true;
        }
      }
      GHOSTDB_RETURN_NOT_OK(best->Advance());
    }
    GHOSTDB_ASSIGN_OR_RETURN(storage::RunRef merged, writer.Finish());
    if (stats != nullptr) {
      stats->runs_written += 1;
      stats->pages_written += merged.page_count();
    }
    for (size_t i = take; i-- > 0;) {
      GHOSTDB_RETURN_NOT_OK(storage::FreeRun(allocator, (*runs)[picked[i]],
                                             tag));
      runs->erase(runs->begin() + static_cast<long>(picked[i]));
    }
    runs->push_back(std::move(merged));
  }
  return Status::OK();
}

Status MergeRowRuns(flash::FlashDevice* device, device::RamManager* ram,
                    storage::PageAllocator* allocator,
                    std::vector<storage::RunRef>* runs, uint32_t width,
                    size_t target_count, const std::string& tag) {
  return MergeRowRunsBy(device, ram, allocator, runs, width, target_count,
                        tag, RowComparator::LeadingU32(),
                        /*drop_key_duplicates=*/false);
}

}  // namespace ghostdb::exec

#include "exec/row_run.h"

#include <algorithm>
#include <memory>

namespace ghostdb::exec {

Status MergeRowRuns(flash::FlashDevice* device, device::RamManager* ram,
                    storage::PageAllocator* allocator,
                    std::vector<storage::RunRef>* runs, uint32_t width,
                    size_t target_count, const std::string& tag) {
  while (runs->size() > target_count) {
    uint32_t free = ram->free_buffers();
    if (free < 3) {
      return Status::ResourceExhausted("row-run merge needs 3 buffers");
    }
    size_t take = std::min<size_t>(free - 1, runs->size());
    GHOSTDB_ASSIGN_OR_RETURN(
        device::BufferHandle bufs,
        ram->Acquire(static_cast<uint32_t>(take) + 1, "rowrun-merge"));
    std::vector<std::unique_ptr<RowRunReader>> readers;
    for (size_t i = 0; i < take; ++i) {
      readers.push_back(std::make_unique<RowRunReader>(
          device, (*runs)[i], width, bufs.data() + i * ram->buffer_size()));
      GHOSTDB_RETURN_NOT_OK(readers.back()->Prime());
    }
    storage::RunWriter writer(device, allocator,
                              bufs.data() + take * ram->buffer_size(), tag);
    while (true) {
      RowRunReader* best = nullptr;
      for (auto& r : readers) {
        if (r->valid() && (best == nullptr || r->key() < best->key())) {
          best = r.get();
        }
      }
      if (best == nullptr) break;
      GHOSTDB_RETURN_NOT_OK(writer.Append(best->row(), width));
      GHOSTDB_RETURN_NOT_OK(best->Advance());
    }
    GHOSTDB_ASSIGN_OR_RETURN(storage::RunRef merged, writer.Finish());
    for (size_t i = 0; i < take; ++i) {
      GHOSTDB_RETURN_NOT_OK(storage::FreeRun(allocator, (*runs)[i], tag));
    }
    runs->erase(runs->begin(), runs->begin() + static_cast<long>(take));
    runs->push_back(std::move(merged));
  }
  return Status::OK();
}

}  // namespace ghostdb::exec

// Aggregate evaluation over query results. The paper lists "the efficient
// implementation of aggregate operators" as future work (section 7); this
// implements the straightforward variant: aggregates are folded on the
// Secure device as final result rows stream out of QEP_P, so per-row data
// still never leaves the key — only the aggregate value reaches the secure
// display.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "catalog/value.h"
#include "common/result.h"
#include "common/status.h"
#include "exec/exact_sum.h"

namespace ghostdb::exec {

/// Aggregate functions over the result of a Select-Project-Join block.
enum class AggFunc : uint8_t { kNone, kCountStar, kCount, kSum, kAvg, kMin,
                               kMax };

std::string_view AggFuncName(AggFunc f);

/// True for aggregates whose result is undefined over an empty input
/// (SUM/AVG/MIN/MAX). GhostDB has no NULLs, so instead of SQL's NULL row
/// an aggregate query whose input is empty yields an *empty result* when
/// any such aggregate is selected; COUNT-only selects still yield their
/// zero row. The engine (AggregateOp / GroupAggregateOp) and the reference
/// oracle both enforce this through the check here.
bool AggRequiresInput(AggFunc f);

/// \brief Streaming accumulator for one aggregate output column.
class Aggregator {
 public:
  Aggregator(AggFunc func, catalog::DataType input_type,
             uint32_t input_width = 0)
      : func_(func), input_type_(input_type), input_width_(input_width) {}

  /// Folds one input value (ignored for COUNT(*)). Integer SUM overflow
  /// past INT64 is detected and fails with OutOfRange (identically in the
  /// encoded path) instead of wrapping.
  Status Accumulate(const catalog::Value& v);
  /// Folds one encoded cell of `input_width_` bytes without materializing
  /// a Value: sums decode the numeric in place, MIN/MAX keep the encoded
  /// bytes and compare via catalog::CompareEncoded.
  Status AccumulateEncoded(const uint8_t* src);
  /// Folds a COUNT(*) row.
  void AccumulateRow() { count_ += 1; }

  /// Folds another accumulator of the same (func, type, width) in — the
  /// shard-combine primitive behind scatter-gather aggregation. Double
  /// sums merge exactly (see ExactDoubleSum), so the combined result is
  /// independent of how the input was partitioned; integer SUM overflow
  /// of the combined total fails with OutOfRange like the streaming path.
  Status MergeFrom(const Aggregator& other);

  /// Width of the encoded partial state EncodePartial() writes: the u64
  /// input count followed by the function's accumulator (nothing for
  /// COUNT, the i64 sum for integer SUM, the ExactDoubleSum register for
  /// double SUM / AVG, one encoded input cell for MIN/MAX). A pure
  /// function of the visible query shape, so spill-row strides stay
  /// hidden-independent.
  static uint32_t PartialWidth(AggFunc func, catalog::DataType input_type,
                               uint32_t input_width);

  /// Serializes this accumulator's partial state (PartialWidth bytes) —
  /// the per-group payload of a partial-aggregate spill row.
  void EncodePartial(uint8_t* dst) const;

  /// Folds an EncodePartial()-encoded state in (the spill-side MergeFrom).
  Status AccumulatePartial(const uint8_t* src);

  /// Rows folded so far (partial-combine bookkeeping).
  uint64_t count() const { return count_; }

  /// True once any input row/value was folded. Callers must check this
  /// before Finish() for the AggRequiresInput functions: over an empty
  /// input their result is undefined and Finish() fails with NotFound
  /// (see AggRequiresInput for the engine-level semantics).
  bool has_input() const { return count_ > 0; }

  /// The final value (COUNT yields INT64; SUM follows the input type with
  /// integer widening; AVG is DOUBLE; MIN/MAX keep the input type).
  /// COUNT narrowing from the internal u64 is checked (OutOfRange rather
  /// than a negative count); SUM/AVG/MIN/MAX over an empty input fail
  /// with NotFound.
  Result<catalog::Value> Finish() const;

  /// Result column type.
  catalog::DataType OutputType() const;

 private:
  AggFunc func_;
  catalog::DataType input_type_;
  uint32_t input_width_ = 0;  ///< encoded cell width (encoded path only)
  uint64_t count_ = 0;
  int64_t int_sum_ = 0;
  /// Double SUM/AVG accumulate exactly so partition order can't change
  /// the result bits (sharded scatter-gather merges per-device partials
  /// in an order the streaming fold can't reproduce).
  ExactDoubleSum double_sum_;
  std::optional<catalog::Value> min_;
  std::optional<catalog::Value> max_;
  std::vector<uint8_t> min_enc_;  ///< encoded-path MIN (empty = unset)
  std::vector<uint8_t> max_enc_;  ///< encoded-path MAX (empty = unset)
};

}  // namespace ghostdb::exec

// Bloom filters for Post-Filtering (paper sections 3.3-3.4).
//
// Calibration follows the paper: m = 8n bits with 4 hash functions gives a
// false-positive rate of ~0.024; when the id list outgrows the RAM that can
// be devoted to the filter, m/n degrades smoothly and the planner may
// reject Post-Filtering entirely (Fig 10: the Post-Filter curve stops when
// the filter "introduces more false positives than it can eliminate").
#pragma once

#include <cmath>
#include <cstdint>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/status.h"
#include "device/guards.h"

namespace ghostdb::exec {

/// \brief A RAM-resident Bloom filter over row ids.
class BloomFilter {
 public:
  /// Sizes the filter for `expected_n` ids aiming at bits_per_element = 8,
  /// capped at `max_buffers` RAM buffers. Acquires RAM from `ram`.
  static Result<BloomFilter> Create(device::RamManager* ram,
                                    uint64_t expected_n, uint32_t max_buffers,
                                    double target_bits_per_element = 8.0);

  void Insert(catalog::RowId id);
  bool MightContain(catalog::RowId id) const;

  uint64_t bit_count() const { return m_bits_; }
  uint32_t hash_count() const { return k_; }
  uint64_t inserted() const { return inserted_; }
  uint32_t buffers_used() const { return bits_.buffer_count(); }

  /// Achieved bits per (expected) element.
  double bits_per_element(uint64_t n) const {
    return n == 0 ? 0.0 : static_cast<double>(m_bits_) / static_cast<double>(n);
  }

  /// Theoretical false-positive rate for `n` inserted elements.
  double EstimatedFpr(uint64_t n) const {
    if (m_bits_ == 0) return 1.0;
    double exponent = -static_cast<double>(k_) * static_cast<double>(n) /
                      static_cast<double>(m_bits_);
    return std::pow(1.0 - std::exp(exponent), k_);
  }

 private:
  BloomFilter(device::RamGuard bits, uint64_t m_bits, uint32_t k)
      : bits_(std::move(bits)), m_bits_(m_bits), k_(k) {}

  device::RamGuard bits_;
  uint64_t m_bits_;
  uint32_t k_;
  uint64_t inserted_ = 0;
};

}  // namespace ghostdb::exec

// The Secure-side query executor: a thin driver that instantiates the
// physical-operator tree of a plan (plan/physical_plan.h) and pulls result
// batches from its root. All query logic lives in the operators
// (operator.h, operators_sj.h, operators_project.h, operators_rel.h).
//
// Everything here runs "on the key": flash I/O and channel transfers charge
// the device clock under named categories (merge / sjoin / store / project /
// comm), RAM comes from the device's 32-buffer budget, and nothing derived
// from Hidden data is ever sent to Untrusted.
#pragma once

#include "exec/operator.h"
#include "plan/physical_plan.h"
#include "plan/strategy.h"

namespace ghostdb::exec {

/// \brief Result rows captured in their encoded (on-flash) cell format.
///
/// The secure rendering surface in two phases: under the channel
/// admission, the executor only memcpys each live row's encoded cells here
/// (cheap); the caller decodes to catalog::Values *after* releasing the
/// device, so one session's rendering overlaps the next session's device
/// work. Owns a copy of the layout, so it stays valid regardless of plan
/// cache eviction.
struct EncodedRows {
  BatchLayout layout;
  std::vector<uint8_t> cells;  ///< row-major: row_count × layout.row_width
  uint64_t row_count = 0;
  /// Global ordering key per row, captured from ColumnBatch::seqs when the
  /// producing run had ExecContext::emit_row_seq set (sharded scatter
  /// runs). Parallel to the rows; empty on ordinary runs.
  std::vector<uint64_t> seqs;

  /// Copies the live physical row `r` of `batch` (binding the layout on
  /// first use).
  void AppendRow(const ColumnBatch& batch, uint32_t physical_row);
  /// Decodes everything into `out->rows` (the one place cells become
  /// Values on this path).
  void DecodeInto(QueryResult* out) const;
};

/// \brief The combined row stream a gather run consumes (declared in
/// operator.h, defined here because it owns EncodedRows).
///
/// `rows` holds every shard's projection output k-way merged ascending on
/// the per-row seq (the global anchor id), which reconstructs the exact
/// row arrival order a single unsharded device would have produced.
/// `skipped_rows` sums the shards' demand-skipped counts (rows that passed
/// all filters but were beyond the materialization demand) so result
/// totals still count every qualifying row.
struct GatherInput {
  EncodedRows rows;
  uint64_t skipped_rows = 0;
};

/// K-way merges per-shard scatter outputs ascending on their seqs. Each
/// input stream is already seq-sorted (shards hold ascending global-id
/// slices and project in local order) and seqs are globally unique, so
/// this is a plain pick-min merge with a deterministic result.
EncodedRows MergeEncodedRowsBySeq(std::vector<EncodedRows> parts);

/// The scatter/gather split point of `plan`: the node index of the
/// aggregation root (kAggregate / kGroupAggregate) if the plan has one,
/// else the projection root (kProject / kBruteForceProject). Everything at
/// or below the boundary runs per shard; everything above it runs once on
/// the gather device over the merged stream.
int FindFanoutBoundary(const plan::PhysicalPlan& plan);

/// \brief Scatter-gather role of one Execute() call on a sharded fleet.
///
/// GhostDB (core/database.cc) orchestrates: each shard executes the plan
/// re-rooted at the fan-out boundary (kScatter), then the gather device
/// executes the full plan with the per-shard outputs substituted for the
/// subtree below the boundary (kGather). A null FanoutParams is the
/// ordinary single-device run.
struct FanoutParams {
  enum class Role : uint8_t { kScatter, kGather };
  Role role = Role::kScatter;
  /// kScatter, aggregate boundary: receives this shard's partial groups
  /// (set on ExecContext::partials_out). Null for row boundaries.
  std::vector<PartialAggGroup>* partials_out = nullptr;
  /// kGather, aggregate boundary: the shard partials, combined by group
  /// key and ordered by first global arrival.
  const std::vector<PartialAggGroup>* gather_partials = nullptr;
  /// kGather, row boundary: the seq-merged row stream.
  const GatherInput* gather_rows = nullptr;
  /// kGather: overrides ExecContext::padding_row_bound with the *global*
  /// anchor row count — the gather device's local store holds only its
  /// own shard, but volume padding must target the fleet-wide worst case
  /// so the observed volume is byte-identical across shard counts.
  uint64_t padding_row_bound_override = 0;
};

/// \brief Executes bound queries on the Secure device.
class SecureExecutor {
 public:
  /// `pool` (optional) provides morsel-parallel host compute to the
  /// operators; null runs everything inline.
  SecureExecutor(device::SecureDevice* device,
                 storage::PageAllocator* allocator,
                 const catalog::Schema* schema,
                 const core::SecureStore* store,
                 untrusted::UntrustedEngine* untrusted, ExecConfig config,
                 ThreadPool* pool = nullptr)
      : device_(device),
        allocator_(allocator),
        schema_(schema),
        store_(store),
        untrusted_(untrusted),
        config_(config),
        pool_(pool) {}

  /// Runs `query` under `plan`. The query text must already have been
  /// announced to Untrusted by the caller, and — in multi-session serving —
  /// the caller must hold the channel arbiter's admission for `session`.
  /// `baseline`, when given, extends the cost accounting back to before
  /// the announcement. `session` (optional) scopes the run: RAM comes from
  /// the session's partition, and the page-leak check reports against the
  /// session. `deferred` (optional) switches the rendering surface to the
  /// two-phase mode: the result comes back with `rows` empty and the
  /// encoded cells in `deferred`, for the caller to DecodeInto() once it
  /// has released its channel admission. `prefetch` (optional) carries the
  /// PC's speculatively evaluated visible answers into the operators.
  /// `fanout` (optional) runs this call as one leg of a sharded
  /// scatter-gather: kScatter executes the plan re-rooted at the fan-out
  /// boundary and emits seq-stamped rows (into `deferred`) or partial
  /// aggregates; kGather executes the tail of the plan over the combined
  /// shard outputs.
  Result<QueryResult> Execute(const sql::BoundQuery& query,
                              const plan::PhysicalPlan& plan,
                              const MetricSnapshot* baseline = nullptr,
                              const SessionBinding* session = nullptr,
                              EncodedRows* deferred = nullptr,
                              untrusted::VisPrefetch* prefetch = nullptr,
                              const FanoutParams* fanout = nullptr);

  /// Convenience overload: lowers a bare PlanChoice first (benches and
  /// tests pin strategy choices without building trees by hand).
  Result<QueryResult> Execute(const sql::BoundQuery& query,
                              const plan::PlanChoice& choice,
                              const MetricSnapshot* baseline = nullptr,
                              const SessionBinding* session = nullptr);

 private:
  /// The tree-driving body of Execute(); runs with the RAM partition
  /// already switched to the session's.
  Result<QueryResult> ExecuteTree(const sql::BoundQuery& query,
                                  const plan::PhysicalPlan& plan,
                                  const MetricSnapshot* baseline,
                                  const SessionBinding* session,
                                  EncodedRows* deferred,
                                  untrusted::VisPrefetch* prefetch,
                                  const FanoutParams* fanout);

  device::SecureDevice* device_;
  storage::PageAllocator* allocator_;
  const catalog::Schema* schema_;
  const core::SecureStore* store_;
  untrusted::UntrustedEngine* untrusted_;
  ExecConfig config_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace ghostdb::exec

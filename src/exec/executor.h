// The Secure-side query executor: a thin driver that instantiates the
// physical-operator tree of a plan (plan/physical_plan.h) and pulls result
// batches from its root. All query logic lives in the operators
// (operator.h, operators_sj.h, operators_project.h, operators_rel.h).
//
// Everything here runs "on the key": flash I/O and channel transfers charge
// the device clock under named categories (merge / sjoin / store / project /
// comm), RAM comes from the device's 32-buffer budget, and nothing derived
// from Hidden data is ever sent to Untrusted.
#pragma once

#include "exec/operator.h"
#include "plan/physical_plan.h"
#include "plan/strategy.h"

namespace ghostdb::exec {

/// \brief Result rows captured in their encoded (on-flash) cell format.
///
/// The secure rendering surface in two phases: under the channel
/// admission, the executor only memcpys each live row's encoded cells here
/// (cheap); the caller decodes to catalog::Values *after* releasing the
/// device, so one session's rendering overlaps the next session's device
/// work. Owns a copy of the layout, so it stays valid regardless of plan
/// cache eviction.
struct EncodedRows {
  BatchLayout layout;
  std::vector<uint8_t> cells;  ///< row-major: row_count × layout.row_width
  uint64_t row_count = 0;

  /// Copies the live physical row `r` of `batch` (binding the layout on
  /// first use).
  void AppendRow(const ColumnBatch& batch, uint32_t physical_row);
  /// Decodes everything into `out->rows` (the one place cells become
  /// Values on this path).
  void DecodeInto(QueryResult* out) const;
};

/// \brief Executes bound queries on the Secure device.
class SecureExecutor {
 public:
  /// `pool` (optional) provides morsel-parallel host compute to the
  /// operators; null runs everything inline.
  SecureExecutor(device::SecureDevice* device,
                 storage::PageAllocator* allocator,
                 const catalog::Schema* schema,
                 const core::SecureStore* store,
                 untrusted::UntrustedEngine* untrusted, ExecConfig config,
                 ThreadPool* pool = nullptr)
      : device_(device),
        allocator_(allocator),
        schema_(schema),
        store_(store),
        untrusted_(untrusted),
        config_(config),
        pool_(pool) {}

  /// Runs `query` under `plan`. The query text must already have been
  /// announced to Untrusted by the caller, and — in multi-session serving —
  /// the caller must hold the channel arbiter's admission for `session`.
  /// `baseline`, when given, extends the cost accounting back to before
  /// the announcement. `session` (optional) scopes the run: RAM comes from
  /// the session's partition, and the page-leak check reports against the
  /// session. `deferred` (optional) switches the rendering surface to the
  /// two-phase mode: the result comes back with `rows` empty and the
  /// encoded cells in `deferred`, for the caller to DecodeInto() once it
  /// has released its channel admission. `prefetch` (optional) carries the
  /// PC's speculatively evaluated visible answers into the operators.
  Result<QueryResult> Execute(const sql::BoundQuery& query,
                              const plan::PhysicalPlan& plan,
                              const MetricSnapshot* baseline = nullptr,
                              const SessionBinding* session = nullptr,
                              EncodedRows* deferred = nullptr,
                              untrusted::VisPrefetch* prefetch = nullptr);

  /// Convenience overload: lowers a bare PlanChoice first (benches and
  /// tests pin strategy choices without building trees by hand).
  Result<QueryResult> Execute(const sql::BoundQuery& query,
                              const plan::PlanChoice& choice,
                              const MetricSnapshot* baseline = nullptr,
                              const SessionBinding* session = nullptr);

 private:
  /// The tree-driving body of Execute(); runs with the RAM partition
  /// already switched to the session's.
  Result<QueryResult> ExecuteTree(const sql::BoundQuery& query,
                                  const plan::PhysicalPlan& plan,
                                  const MetricSnapshot* baseline,
                                  const SessionBinding* session,
                                  EncodedRows* deferred,
                                  untrusted::VisPrefetch* prefetch);

  device::SecureDevice* device_;
  storage::PageAllocator* allocator_;
  const catalog::Schema* schema_;
  const core::SecureStore* store_;
  untrusted::UntrustedEngine* untrusted_;
  ExecConfig config_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace ghostdb::exec

// The Secure-side query executor: composes Vis, CI, Merge, SJoin,
// BuildBF/ProbeBF (QEP_SJ, paper section 3.3) and the Project algorithm
// with its MJoin core (QEP_P, section 4) according to a PlanChoice.
//
// Everything here runs "on the key": flash I/O and channel transfers charge
// the device clock under named categories (merge / sjoin / store / project /
// comm), RAM comes from the device's 32-buffer budget, and nothing derived
// from Hidden data is ever sent to Untrusted.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/status.h"
#include "core/secure_store.h"
#include "device/secure_device.h"
#include "exec/aggregate.h"
#include "exec/bloom.h"
#include "exec/merge.h"
#include "plan/strategy.h"
#include "sql/binder.h"
#include "storage/page_allocator.h"
#include "untrusted/engine.h"

namespace ghostdb::exec {

/// Execution knobs (defaults follow the paper).
struct ExecConfig {
  MergeOverflowPolicy merge_policy = MergeOverflowPolicy::kReduction;
  /// Bloom sizing target: m/n bits per element (paper: 8).
  double bloom_target_bpe = 8.0;
  /// Below this achievable m/n a Post-Filter is not worth executing
  /// (Fig 10: the filter would inject more false positives than it kills).
  double bloom_min_bpe = 2.0;
  /// RAM cap for one QEP_SJ Bloom filter, in buffers.
  uint32_t bloom_max_buffers = 16;
  /// When false, hidden selections deliver only self-level ids and must
  /// cascade through per-id index lookups to reach the anchor — the
  /// baseline the climbing index replaces (section 3.2 motivation;
  /// ablation A4).
  bool climbing_enabled = true;
  /// Keep at most this many result rows materialized for the caller
  /// (counts stay exact; benches set a small limit).
  uint64_t result_row_limit = UINT64_MAX;
};

/// Observable per-query costs.
struct QueryMetrics {
  SimNanos total_ns = 0;
  std::map<std::string, SimNanos> categories;  ///< merge/sjoin/store/...
  flash::FlashStats flash;
  uint64_t bytes_to_secure = 0;
  uint64_t bytes_to_untrusted = 0;
  uint64_t qepsj_rows = 0;     ///< rows out of QEP_SJ (superset w/ blooms)
  uint64_t result_rows = 0;    ///< exact final row count
  uint32_t peak_ram_buffers = 0;
  MergeStats merge;
  double bloom_fpr_estimate = 0.0;  ///< worst filter used in QEP_SJ
};

/// A query answer, delivered to the secure rendering surface.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<catalog::Value>> rows;  ///< up to result_row_limit
  uint64_t total_rows = 0;
  QueryMetrics metrics;
};

/// \brief Cost-counter baseline: captured before the first query-related
/// channel transfer so metrics include the query announcement and the
/// planner's Vis-count exchanges.
struct MetricSnapshot {
  SimNanos clock_ns = 0;
  std::map<std::string, SimNanos> categories;
  flash::FlashStats flash;
  uint64_t bytes_to_secure = 0;
  uint64_t bytes_to_untrusted = 0;

  static MetricSnapshot Take(device::SecureDevice* device);
  /// Fills the delta since this snapshot into `metrics`.
  void Delta(device::SecureDevice* device, QueryMetrics* metrics) const;
};

/// \brief Executes bound queries on the Secure device.
class SecureExecutor {
 public:
  SecureExecutor(device::SecureDevice* device,
                 storage::PageAllocator* allocator,
                 const catalog::Schema* schema,
                 const core::SecureStore* store,
                 untrusted::UntrustedEngine* untrusted, ExecConfig config)
      : device_(device),
        allocator_(allocator),
        schema_(schema),
        store_(store),
        untrusted_(untrusted),
        config_(config) {}

  /// Runs `query` under `plan`. The query text must already have been
  /// announced to Untrusted by the caller. `baseline`, when given, extends
  /// the cost accounting back to before the announcement.
  Result<QueryResult> Execute(const sql::BoundQuery& query,
                              const plan::PlanChoice& plan,
                              const MetricSnapshot* baseline = nullptr);

 private:
  /// Per-table visible-strategy state.
  struct VisTable {
    catalog::TableId table;
    plan::VisStrategy strategy;
    std::vector<catalog::RowId> ids;   ///< Vis selection result (sorted)
    std::optional<BloomFilter> bloom;  ///< for post strategies in QEP_SJ
    uint32_t probe_offset = 0;         ///< byte offset of probe column in F'
    bool need_exact_at_projection = false;
    bool post_select = false;
  };

  /// Materialized QEP_SJ output F'.
  struct SjResult {
    storage::RunRef fprime;
    /// Non-anchor id columns of F', ascending TableId.
    std::vector<catalog::TableId> column_tables;
    uint32_t row_width = 4;
    uint64_t rows = 0;

    std::optional<uint32_t> ColumnOffset(catalog::TableId t,
                                         catalog::TableId anchor) const;
  };

  Result<SjResult> RunQepSj(const sql::BoundQuery& query,
                            std::vector<VisTable>* vis_tables,
                            QueryMetrics* metrics);

  /// Collects the sublists of one hidden predicate at the `target` level.
  Status CollectPredicateSublists(
      const sql::BoundPredicate& pred, catalog::TableId target,
      MergeGroup* group);

  /// Probes `from`'s id climbing index for each id, adding the `to`-level
  /// sublists to `group`.
  Status ClimbIntoGroup(catalog::TableId from, catalog::TableId to,
                        const std::vector<catalog::RowId>& ids,
                        MergeGroup* group);

  /// Fallback when a hidden attribute has no climbing index: sequential
  /// scan of the hidden image.
  Result<std::vector<catalog::RowId>> ScanHiddenPredicate(
      const sql::BoundPredicate& pred);

  /// Exact Post-Select pass: keeps F' rows whose probe column is in `ids`.
  Result<SjResult> PostSelectFilter(const SjResult& sj, uint32_t probe_offset,
                                    const std::vector<catalog::RowId>& ids);

  Status RunProject(const sql::BoundQuery& query,
                    const plan::PlanChoice& plan, const SjResult& sj,
                    std::vector<VisTable>& vis_tables, QueryResult* result,
                    QueryMetrics* metrics, std::vector<Aggregator>* aggs);
  Status RunBruteForceProject(const sql::BoundQuery& query,
                              const SjResult& sj,
                              std::vector<VisTable>& vis_tables,
                              QueryResult* result, QueryMetrics* metrics,
                              std::vector<Aggregator>* aggs);
  /// Folds `row` into the aggregators, or materializes it (up to the
  /// configured limit).
  Status FoldOrEmit(const sql::BoundQuery& query,
                    std::vector<catalog::Value> row, QueryResult* result,
                    std::vector<Aggregator>* aggs);

  device::SecureDevice* device_;
  storage::PageAllocator* allocator_;
  const catalog::Schema* schema_;
  const core::SecureStore* store_;
  untrusted::UntrustedEngine* untrusted_;
  ExecConfig config_;
};

}  // namespace ghostdb::exec

// The Secure-side query executor: a thin driver that instantiates the
// physical-operator tree of a plan (plan/physical_plan.h) and pulls result
// batches from its root. All query logic lives in the operators
// (operator.h, operators_sj.h, operators_project.h, operators_rel.h).
//
// Everything here runs "on the key": flash I/O and channel transfers charge
// the device clock under named categories (merge / sjoin / store / project /
// comm), RAM comes from the device's 32-buffer budget, and nothing derived
// from Hidden data is ever sent to Untrusted.
#pragma once

#include "exec/operator.h"
#include "plan/physical_plan.h"
#include "plan/strategy.h"

namespace ghostdb::exec {

/// \brief Executes bound queries on the Secure device.
class SecureExecutor {
 public:
  SecureExecutor(device::SecureDevice* device,
                 storage::PageAllocator* allocator,
                 const catalog::Schema* schema,
                 const core::SecureStore* store,
                 untrusted::UntrustedEngine* untrusted, ExecConfig config)
      : device_(device),
        allocator_(allocator),
        schema_(schema),
        store_(store),
        untrusted_(untrusted),
        config_(config) {}

  /// Runs `query` under `plan`. The query text must already have been
  /// announced to Untrusted by the caller. `baseline`, when given, extends
  /// the cost accounting back to before the announcement.
  Result<QueryResult> Execute(const sql::BoundQuery& query,
                              const plan::PhysicalPlan& plan,
                              const MetricSnapshot* baseline = nullptr);

  /// Convenience overload: lowers a bare PlanChoice first (benches and
  /// tests pin strategy choices without building trees by hand).
  Result<QueryResult> Execute(const sql::BoundQuery& query,
                              const plan::PlanChoice& choice,
                              const MetricSnapshot* baseline = nullptr);

 private:
  device::SecureDevice* device_;
  storage::PageAllocator* allocator_;
  const catalog::Schema* schema_;
  const core::SecureStore* store_;
  untrusted::UntrustedEngine* untrusted_;
  ExecConfig config_;
};

}  // namespace ghostdb::exec

// SJoin (paper section 3.3): key semi-join between a sorted list of anchor
// ids and the anchor's Subtree Key Table, projecting the ids of selected
// descendant tables. Because both sides are sorted on the anchor id, it
// needs two buffers to stream plus one to write — and each touched SKT page
// is read exactly once (pages with no qualifying row are skipped).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "storage/fixed_table.h"

namespace ghostdb::exec {

/// \brief Push-style SJoin stage: feed ascending anchor ids, it emits
/// [anchor_id, id_{T_a}, id_{T_b}, ...] rows to its sink.
class SJoinStage {
 public:
  /// `skt_slots`: for each output column after the anchor id, the SKT column
  /// index to copy. `buffer` is one RAM buffer for SKT pages. The SKT may be
  /// null when `skt_slots` is empty (anchor-only output).
  SJoinStage(flash::FlashDevice* device, const storage::FixedTableRef* skt,
             std::vector<uint32_t> skt_slots, uint8_t* buffer,
             std::function<Status(const uint8_t* row, uint32_t width)> sink);

  /// Processes one anchor id (ids must arrive in ascending order).
  Status Consume(catalog::RowId anchor_id);

  /// Output row width in bytes.
  uint32_t row_width() const { return row_width_; }
  uint64_t rows_emitted() const { return rows_; }
  uint64_t skt_pages_touched() const {
    return reader_ ? reader_->pages_touched() : 0;
  }

 private:
  std::optional<storage::FixedTableReader> reader_;
  std::vector<uint32_t> slots_;
  std::function<Status(const uint8_t*, uint32_t)> sink_;
  uint32_t row_width_;
  std::vector<uint8_t> skt_row_;
  std::vector<uint8_t> out_row_;
  uint64_t rows_ = 0;
};

}  // namespace ghostdb::exec

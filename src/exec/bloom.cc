#include "exec/bloom.h"

#include <algorithm>
#include <cstring>

#include "crypto/hash.h"

namespace ghostdb::exec {

Result<BloomFilter> BloomFilter::Create(device::RamManager* ram,
                                        uint64_t expected_n,
                                        uint32_t max_buffers,
                                        double target_bits_per_element) {
  uint64_t want_bits =
      static_cast<uint64_t>(std::max(1.0, target_bits_per_element) *
                            static_cast<double>(std::max<uint64_t>(
                                expected_n, 1)));
  uint64_t want_buffers =
      (want_bits / 8 + ram->buffer_size() - 1) / ram->buffer_size();
  uint32_t buffers = static_cast<uint32_t>(std::min<uint64_t>(
      std::max<uint64_t>(want_buffers, 1), max_buffers));
  GHOSTDB_ASSIGN_OR_RETURN(device::RamGuard handle,
                           device::RamGuard::Acquire(ram, buffers, "bloom"));
  std::memset(handle.data(), 0, handle.size());
  uint64_t m_bits = static_cast<uint64_t>(handle.size()) * 8;
  // Optimal k = ln2 * m/n, clamped to [1, 8].
  double ratio = expected_n == 0
                     ? 8.0
                     : static_cast<double>(m_bits) /
                           static_cast<double>(expected_n);
  uint32_t k = static_cast<uint32_t>(std::lround(0.6931 * ratio));
  k = std::max<uint32_t>(1, std::min<uint32_t>(k, 8));
  return BloomFilter(std::move(handle), m_bits, k);
}

void BloomFilter::Insert(catalog::RowId id) {
  // Kirsch-Mitzenmacher double hashing: h_i = h1 + i*h2.
  uint64_t h1 = crypto::HashId(id, 0x51ul);
  uint64_t h2 = crypto::HashId(id, 0xB10Dull);
  for (uint32_t i = 0; i < k_; ++i) {
    uint64_t bit = (h1 + i * h2) % m_bits_;
    bits_.data()[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
  }
  inserted_ += 1;
}

bool BloomFilter::MightContain(catalog::RowId id) const {
  uint64_t h1 = crypto::HashId(id, 0x51ul);
  uint64_t h2 = crypto::HashId(id, 0xB10Dull);
  for (uint32_t i = 0; i < k_; ++i) {
    uint64_t bit = (h1 + i * h2) % m_bits_;
    if ((bits_.data()[bit / 8] & (1u << (bit % 8))) == 0) return false;
  }
  return true;
}

}  // namespace ghostdb::exec

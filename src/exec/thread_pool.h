// A pinned worker pool for morsel-driven parallel execution.
//
// GhostDB owns one pool, sized by GhostDBConfig::worker_threads, and every
// user of it obeys the same contract: worker threads run *pure host-side
// value compute only*. They never touch the channel, the flash device, the
// RAM manager, query metrics, or any other device state — all of that stays
// on the thread that holds the channel admission. Work is dealt as
// contiguous shards of an index range whose boundaries are a pure function
// of (n, min_grain, width), and every result lands in a caller-indexed slot,
// so the outcome of a parallel region is bit-identical for every thread
// count — the leak sweep's transcript contract and the differential fuzz
// oracle hold for worker_threads 1 and 8 alike.
//
// The pool is shared: several session threads may run parallel regions
// concurrently (PC-side prefetch for one session while another session's
// admitted execution sorts a spill generation). Shards of all in-flight
// regions draw from one FIFO of regions; the submitting thread always
// participates, so a region makes progress even when every worker is busy
// elsewhere — and a width-1 pool (worker_threads=1) degrades to a plain
// inline loop with no threads at all.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ghostdb::exec {

/// \brief Fixed-width pool of pinned worker threads.
class ThreadPool {
 public:
  /// `width` is the total parallelism degree (calling thread included):
  /// width w spawns w-1 workers. With `pin_threads` (Linux), workers are
  /// pinned round-robin across the machine's cores, the related systems'
  /// ThreadGroup discipline — morsel workers stop migrating under load.
  explicit ThreadPool(uint32_t width, bool pin_threads = true);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism degree (>= 1, calling thread included).
  uint32_t width() const { return width_; }

  /// Number of contiguous shards ParallelShards will cut [0, n) into:
  /// min(width, n / min_grain), at least 1. Pure function of its inputs.
  uint32_t ShardCount(uint64_t n, uint64_t min_grain) const;

  /// Boundaries of shard `s` of `shards` over [0, n): balanced contiguous
  /// ranges, deterministic.
  static std::pair<uint64_t, uint64_t> ShardRange(uint64_t n, uint32_t shards,
                                                  uint32_t s);

  /// Runs body(shard, begin, end) for every shard of [0, n), concurrently
  /// across the pool; the calling thread participates and the call returns
  /// only when every shard has finished. Bodies must confine themselves to
  /// host memory owned by the caller (never device state) and must not
  /// throw. Reentrant: bodies must not call back into the pool.
  void ParallelShards(
      uint64_t n, uint64_t min_grain,
      const std::function<void(uint32_t, uint64_t, uint64_t)>& body);

 private:
  struct Region {
    const std::function<void(uint32_t, uint64_t, uint64_t)>* body;
    uint64_t n;
    uint32_t shards;
    uint32_t next = 0;  ///< next shard to hand out (guarded by mu_)
    uint32_t done = 0;  ///< shards finished (guarded by mu_)
  };

  void WorkerLoop(uint32_t worker_index);
  /// Runs shards of `region` until none are left to claim. Entered with
  /// `lk` (on mu_) held and at least one unclaimed shard; returns with it
  /// held.
  void DrainRegion(Region* region, std::unique_lock<std::mutex>& lk);

  const uint32_t width_;
  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: a region was queued
  std::condition_variable done_cv_;  ///< submitters: some shard finished
  std::deque<Region*> regions_;      ///< regions with unclaimed shards
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace ghostdb::exec

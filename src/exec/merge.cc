#include "exec/merge.h"

#include <algorithm>

namespace ghostdb::exec {

using catalog::RowId;

uint64_t MergeGroup::TotalIds() const {
  uint64_t n = 0;
  for (const auto& [area, range] : sublists) n += range.count;
  for (const auto& run : runs) n += run.bytes / 4;
  if (has_ram_ids) n += ram_ids.size();
  if (has_iota) n += iota_n;
  return n;
}

Status MergeExec::ReduceGroup(MergeGroup* group, size_t target_streams) {
  stats_.reduction_rounds += 1;
  // Reduction runs created this round. Declared outside the body scope so
  // the error path below can hand survivors back to the group for
  // reclamation — a faulted reduction must not strand merge-tmp extents.
  std::vector<storage::RunRef> new_runs;
  Status status = [&]() -> Status {
  // Workspace: every free buffer minus one reader and one writer.
  uint32_t free = ram_->free_buffers();
  if (free < 3) {
    return Status::ResourceExhausted(
        "merge reduction needs at least 3 free buffers");
  }
  GHOSTDB_ASSIGN_OR_RETURN(device::RamGuard read_buf,
                           device::RamGuard::AcquireOne(ram_, "merge-reduce-read"));
  GHOSTDB_ASSIGN_OR_RETURN(device::RamGuard write_buf,
                           device::RamGuard::AcquireOne(ram_, "merge-reduce-write"));
  GHOSTDB_ASSIGN_OR_RETURN(
      device::RamGuard sort_area,
      device::RamGuard::Acquire(ram_, ram_->free_buffers(), "merge-reduce-sort"));
  size_t capacity_ids = sort_area.size() / 4;

  // Pass 1: stream every sublist and run of the group, chunk-sort-write.
  // (Ids are staged in the sort area, modeled host-side; the I/O below is
  // what the device would pay.)
  std::vector<RowId> staging;
  staging.reserve(capacity_ids);

  auto flush_staging = [&]() -> Status {
    if (staging.empty()) return Status::OK();
    std::sort(staging.begin(), staging.end());
    storage::RunWriter writer(device_, allocator_, write_buf.data(),
                              "merge-tmp");
    for (RowId id : staging) {
      GHOSTDB_RETURN_NOT_OK(writer.AppendU32(id));
    }
    GHOSTDB_ASSIGN_OR_RETURN(storage::RunRef run, writer.Finish());
    stats_.reduction_ids_written += staging.size();
    new_runs.push_back(std::move(run));
    staging.clear();
    return Status::OK();
  };

  auto drain_source = [&](IdSource* src) -> Status {
    GHOSTDB_RETURN_NOT_OK(src->Prime());
    while (src->valid()) {
      staging.push_back(src->head());
      if (staging.size() == capacity_ids) {
        GHOSTDB_RETURN_NOT_OK(flush_staging());
      }
      GHOSTDB_RETURN_NOT_OK(src->Advance());
    }
    return Status::OK();
  };

  for (const auto& [area, range] : group->sublists) {
    PostingIdSource src(device_, area, range, read_buf.data());
    GHOSTDB_RETURN_NOT_OK(drain_source(&src));
  }
  for (auto& run : group->runs) {
    RunIdSource src(device_, run, read_buf.data());
    GHOSTDB_RETURN_NOT_OK(drain_source(&src));
    GHOSTDB_RETURN_NOT_OK(storage::FreeRun(allocator_, run, "merge-tmp"));
    run = storage::RunRef{};  // freed: the error-path sweep must skip it
  }
  GHOSTDB_RETURN_NOT_OK(flush_staging());
  group->sublists.clear();
  group->runs.clear();

  // Pass 2+: k-way merge runs until few enough remain.
  uint32_t fan_in = ram_->free_buffers() + sort_area.buffer_count() - 1;
  sort_area.Release();  // reuse as per-run stream buffers below
  while (new_runs.size() > target_streams) {
    size_t take = std::min<size_t>(fan_in, new_runs.size());
    if (take < 2) {
      return Status::ResourceExhausted("merge reduction cannot make progress");
    }
    GHOSTDB_ASSIGN_OR_RETURN(
        device::RamGuard stream_bufs,
        device::RamGuard::Acquire(ram_, static_cast<uint32_t>(take), "merge-reduce-fanin"));
    std::vector<std::unique_ptr<RunIdSource>> sources;
    for (size_t i = 0; i < take; ++i) {
      sources.push_back(std::make_unique<RunIdSource>(
          device_, new_runs[i],
          stream_bufs.data() + i * ram_->buffer_size()));
      GHOSTDB_RETURN_NOT_OK(sources.back()->Prime());
    }
    storage::RunWriter writer(device_, allocator_, write_buf.data(),
                              "merge-tmp");
    while (true) {
      // Union-merge: emit the global min (keeping duplicates is harmless).
      bool any = false;
      RowId min_id = 0;
      for (auto& s : sources) {
        if (s->valid() && (!any || s->head() < min_id)) {
          min_id = s->head();
          any = true;
        }
      }
      if (!any) break;
      GHOSTDB_RETURN_NOT_OK(writer.AppendU32(min_id));
      stats_.reduction_ids_written += 1;
      for (auto& s : sources) {
        while (s->valid() && s->head() == min_id) {
          GHOSTDB_RETURN_NOT_OK(s->Advance());
        }
      }
    }
    GHOSTDB_ASSIGN_OR_RETURN(storage::RunRef merged, writer.Finish());
    new_runs.push_back(std::move(merged));  // owned before inputs are freed
    for (size_t i = 0; i < take; ++i) {
      GHOSTDB_RETURN_NOT_OK(
          storage::FreeRun(allocator_, new_runs[i], "merge-tmp"));
      new_runs[i] = storage::RunRef{};
    }
    new_runs.erase(new_runs.begin(),
                   new_runs.begin() + static_cast<long>(take));
  }
  group->runs = std::move(new_runs);
  return Status::OK();
  }();
  if (!status.ok()) {
    // Hand surviving reduction runs back to the group: Run()'s cleanup
    // sweep reclaims whatever is still attached there.
    for (auto& run : new_runs) {
      if (!run.extents.empty()) group->runs.push_back(std::move(run));
    }
  }
  return status;
}

Status MergeExec::StreamingMerge(
    std::vector<MergeGroup>& groups,
    const std::function<Status(RowId)>& sink, uint32_t usable_buffers) {
  size_t total_streams = 0;
  for (auto& g : groups) total_streams += g.FlashStreams();
  stats_.peak_streams =
      std::max<uint32_t>(stats_.peak_streams,
                         static_cast<uint32_t>(total_streams));

  device::RamGuard stream_bufs;
  size_t window = ram_->buffer_size();
  if (total_streams > 0) {
    uint32_t buffers_needed = static_cast<uint32_t>(total_streams);
    if (policy_ == MergeOverflowPolicy::kSubBuffer &&
        total_streams > usable_buffers) {
      // Split the usable buffers into equal sub-buffers (paper alt. 2).
      buffers_needed = usable_buffers;
      size_t bytes = static_cast<size_t>(usable_buffers) *
                     ram_->buffer_size() / total_streams;
      window = std::max<size_t>(64, bytes & ~size_t{3});
    }
    GHOSTDB_ASSIGN_OR_RETURN(stream_bufs,
                             device::RamGuard::Acquire(ram_, buffers_needed, "merge-streams"));
  }

  // Wire up sources, slicing the buffer arena into windows.
  std::vector<std::vector<std::unique_ptr<IdSource>>> group_sources(
      groups.size());
  size_t cursor = 0;
  auto next_window = [&]() {
    uint8_t* p = stream_bufs.data() + cursor;
    cursor += window;
    return p;
  };
  uint32_t window_bytes = static_cast<uint32_t>(window);
  for (size_t gi = 0; gi < groups.size(); ++gi) {
    auto& g = groups[gi];
    for (const auto& [area, range] : g.sublists) {
      group_sources[gi].push_back(std::make_unique<PostingIdSource>(
          device_, area, range, next_window(), window_bytes));
    }
    for (const auto& run : g.runs) {
      group_sources[gi].push_back(std::make_unique<RunIdSource>(
          device_, run, next_window(), window_bytes));
    }
    if (g.has_ram_ids) {
      group_sources[gi].push_back(
          std::make_unique<VectorIdSource>(g.ram_ids));
    }
    if (g.has_iota) {
      group_sources[gi].push_back(std::make_unique<IotaIdSource>(g.iota_n));
    }
  }
  for (auto& sources : group_sources) {
    for (auto& s : sources) {
      GHOSTDB_RETURN_NOT_OK(s->Prime());
    }
  }

  // Intersection of unions, streaming.
  auto group_min = [&](size_t gi, RowId* out) {
    bool any = false;
    RowId min_id = 0;
    for (auto& s : group_sources[gi]) {
      if (s->valid() && (!any || s->head() < min_id)) {
        min_id = s->head();
        any = true;
      }
    }
    *out = min_id;
    return any;
  };

  while (true) {
    // Candidate: max over group minima; if any group is exhausted, done.
    RowId candidate = 0;
    for (size_t gi = 0; gi < groups.size(); ++gi) {
      RowId gmin;
      if (!group_min(gi, &gmin)) return Status::OK();
      candidate = std::max(candidate, gmin);
    }
    // Advance every group to >= candidate; restart if any overshoots.
    bool aligned = true;
    for (size_t gi = 0; gi < groups.size() && aligned; ++gi) {
      for (auto& s : group_sources[gi]) {
        while (s->valid() && s->head() < candidate) {
          GHOSTDB_RETURN_NOT_OK(s->Advance());
        }
      }
      RowId gmin;
      if (!group_min(gi, &gmin)) return Status::OK();
      if (gmin > candidate) aligned = false;
    }
    if (!aligned) continue;
    GHOSTDB_RETURN_NOT_OK(sink(candidate));
    stats_.ids_emitted += 1;
    for (auto& sources : group_sources) {
      for (auto& s : sources) {
        while (s->valid() && s->head() == candidate) {
          GHOSTDB_RETURN_NOT_OK(s->Advance());
        }
      }
    }
  }
}

Status MergeExec::Run(std::vector<MergeGroup> groups,
                      const std::function<Status(RowId)>& sink,
                      uint32_t reserve_buffers) {
  if (groups.empty()) return Status::OK();
  Status status = [&]() -> Status {
  if (ram_->free_buffers() <= reserve_buffers) {
    return Status::ResourceExhausted("merge has no usable RAM buffers");
  }
  uint32_t usable = ram_->free_buffers() - reserve_buffers;

  // Stream capacity: one full buffer per stream under the reduction
  // policy; 64-byte sub-buffers at minimum under the sub-buffer policy
  // (beyond that even sub-buffering cannot help and reduction kicks in).
  {
    size_t stream_cap =
        policy_ == MergeOverflowPolicy::kReduction
            ? usable
            : usable * ram_->buffer_size() / 64;
    // Shrink groups until every flash stream can own a (sub-)buffer.
    while (true) {
      size_t total = 0;
      for (auto& g : groups) total += g.FlashStreams();
      if (total <= stream_cap) break;
      // Reduce the fattest group to its fair allowance.
      size_t fattest = 0;
      for (size_t gi = 1; gi < groups.size(); ++gi) {
        if (groups[gi].FlashStreams() > groups[fattest].FlashStreams()) {
          fattest = gi;
        }
      }
      size_t others = total - groups[fattest].FlashStreams();
      size_t allowance =
          stream_cap > others + 1 ? stream_cap - others : 1;
      if (groups[fattest].FlashStreams() <= allowance) {
        return Status::Internal("merge reduction made no progress");
      }
      GHOSTDB_RETURN_NOT_OK(ReduceGroup(&groups[fattest], allowance));
    }
  }

  return StreamingMerge(groups, sink, usable);
  }();

  // Consume input runs — reached on error paths too, so a faulted merge
  // reclaims every merge-tmp extent (reduction already freed and zeroed
  // what it replaced). The first error wins; the sweep always finishes.
  for (auto& g : groups) {
    for (auto& run : g.runs) {
      if (run.extents.empty()) continue;
      Status freed = storage::FreeRun(allocator_, run, "merge-tmp");
      if (status.ok() && !freed.ok()) status = std::move(freed);
    }
    g.runs.clear();
  }
  return status;
}

}  // namespace ghostdb::exec

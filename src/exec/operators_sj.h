// The QEP_SJ operators (paper section 3.3): everything between the Visible
// selections and the materialized semi-join output F'. These work in id
// space under the device RAM discipline; their product is
// PipelineState::sj.
#pragma once

#include <functional>
#include <vector>

#include "exec/operator.h"

namespace ghostdb::exec {

/// \brief Resolves hidden selections into merge groups: climbing-index
/// sublists, cascading per-id lookups (the A4 baseline), and the
/// sequential-scan fallback for unindexed attributes. Shared by VisSelectOp
/// (Cross intersections) and MergeOp (anchor-level groups).
class HiddenSelector {
 public:
  explicit HiddenSelector(ExecContext* ctx) : ctx_(ctx) {}

  /// Collects the sublists of one hidden predicate at the `target` level.
  Status CollectPredicateSublists(const sql::BoundPredicate& pred,
                                  catalog::TableId target, MergeGroup* group);

  /// Probes `from`'s id climbing index for each id, adding the `to`-level
  /// sublists to `group`.
  Status ClimbIntoGroup(catalog::TableId from, catalog::TableId to,
                        const std::vector<catalog::RowId>& ids,
                        MergeGroup* group);

  /// Fallback when a hidden attribute has no climbing index: sequential
  /// scan of the hidden image.
  Result<std::vector<catalog::RowId>> ScanHiddenPredicate(
      const sql::BoundPredicate& pred);

  /// Ti-level cross intersection: Vis(Ti) ∩ the hidden selections in Ti's
  /// subtree (`pred_indices` into PipelineState::hidden_preds), producing a
  /// sorted id list of Ti.
  Status CrossIntersect(const VisTable& vt,
                        const std::vector<size_t>& pred_indices,
                        std::vector<catalog::RowId>* out);

  /// Indices (into PipelineState::hidden_preds) of hidden predicates in
  /// the subtree rooted at `t`.
  std::vector<size_t> SubtreePredicates(catalog::TableId t) const;

 private:
  ExecContext* ctx_;
};

/// \brief Leaf: serves the Visible selections and applies the id-list side
/// of each table's strategy — Cross intersections, Pre-Filter climbs into
/// anchor groups, Post-Select marking, strategy demotion when no hidden
/// predicate exists in the subtree.
class VisSelectOp final : public Operator {
 public:
  explicit VisSelectOp(ExecContext* ctx) : Operator(ctx) {}
  std::string_view name() const override { return "VisSelect"; }
  Status Open() override;
  Result<ColumnBatch> Next() override { return ColumnBatch{}; }
};

/// \brief BuildBF: sizes and fills one Bloom filter per (Cross)Post-Filter
/// table from its filter basis, degrading to exact-at-projection when the
/// achievable bits-per-element would make the filter counterproductive
/// (Fig 10). The matching ProbeBF stages are fused into SJoinOp, as in the
/// paper's pipelined composition.
class BloomBuildOp final : public Operator {
 public:
  explicit BloomBuildOp(ExecContext* ctx) : Operator(ctx) {}
  std::string_view name() const override { return "BloomBuild"; }
  Status Open() override;
  Result<ColumnBatch> Next() override { return ColumnBatch{}; }
};

/// \brief Assembles the anchor-level merge groups (unfolded hidden
/// selections via climbing or cascading, iota when nothing restricts the
/// anchor) and drives the RAM-bounded intersection-of-unions into a sink.
class MergeOp final : public Operator {
 public:
  explicit MergeOp(ExecContext* ctx) : Operator(ctx) {}
  std::string_view name() const override { return "Merge"; }
  Status Open() override;
  Result<ColumnBatch> Next() override { return ColumnBatch{}; }

  /// Runs the merge over PipelineState::anchor_groups, pushing ascending
  /// deduplicated anchor ids into `sink`. Called once, by SJoinOp::Open()
  /// — the merge is pipelined into the semi-join, never materialized.
  Status Drive(const std::function<Status(catalog::RowId)>& sink);
};

/// \brief Streams the merged anchor ids through the anchor's SKT, probing
/// the Post-Filter Blooms on the way (ProbeBF), and materializes F' on
/// flash.
class SJoinOp final : public Operator {
 public:
  SJoinOp(ExecContext* ctx, MergeOp* merge) : Operator(ctx), merge_(merge) {}
  std::string_view name() const override { return "SJoin"; }
  Status Open() override;
  Result<ColumnBatch> Next() override { return ColumnBatch{}; }

 private:
  MergeOp* merge_;
};

/// \brief Exact Post-Select passes: keeps F' rows whose probe column is in
/// the table's in-RAM id list, chunked to the RAM budget.
class PostSelectOp final : public Operator {
 public:
  explicit PostSelectOp(ExecContext* ctx) : Operator(ctx) {}
  std::string_view name() const override { return "PostSelect"; }
  Status Open() override;
  Result<ColumnBatch> Next() override { return ColumnBatch{}; }

 private:
  Result<SjState> Filter(const SjState& sj, uint32_t probe_offset,
                         const std::vector<catalog::RowId>& ids);
};

}  // namespace ghostdb::exec

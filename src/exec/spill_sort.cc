#include "exec/spill_sort.h"

#include <algorithm>
#include <numeric>

namespace ghostdb::exec {

ExternalRowSorter::ExternalRowSorter(ExecContext* ctx, uint32_t row_width,
                                     RowComparator cmp, uint64_t budget_rows,
                                     bool drop_key_duplicates,
                                     std::string tag)
    : ctx_(ctx),
      row_width_(row_width),
      cmp_(std::move(cmp)),
      budget_rows_(std::max<uint64_t>(1, budget_rows)),
      dedup_(drop_key_duplicates),
      tag_(std::move(tag)) {}

ExternalRowSorter::~ExternalRowSorter() {
  // Abandoned stream (LIMIT above, error unwind): free flash best-effort —
  // the executor's page-leak check runs after the tree is destroyed.
  if (!closed_) {
    GHOSTDB_IGNORE_STATUS(Close(),
                          "nothing useful to do with a late free failure");
  }
}

Status ExternalRowSorter::Add(const uint8_t* row) {
  if (finished_) return Status::Internal("Add() after Finish()");
  if (gen_rows_ >= budget_rows_) {
    if (!ctx_->config->spill_enabled) {
      return Status::ResourceExhausted(
          tag_ + " working set exceeds the relational-tail budget (" +
          std::to_string(budget_rows_) +
          " rows) and spilling is disabled");
    }
    GHOSTDB_RETURN_NOT_OK(SpillGeneration());
  }
  arena_.insert(arena_.end(), row, row + row_width_);
  gen_rows_ += 1;
  return Status::OK();
}

void ExternalRowSorter::SortGeneration() {
  perm_.resize(gen_rows_);
  std::iota(perm_.begin(), perm_.end(), 0);
  auto less = [&](uint32_t a, uint32_t b) {
    return cmp_.Compare(GenRow(a), GenRow(b)) < 0;
  };
  // Morsel-parallel generation sort: contiguous permutation chunks sorted
  // across the pool, then pairwise in-place merge rounds (pairs merged
  // concurrently). The trailing arrival sequence makes the order total, so
  // the sorted permutation is *the* unique one — identical for every
  // thread count and merge structure. Pure host compute over the arena;
  // the flash writes of SpillGeneration stay on the calling thread.
  constexpr uint64_t kSortGrain = 1024;
  ThreadPool* pool = ctx_->pool;
  uint32_t shards = pool != nullptr ? pool->ShardCount(gen_rows_, kSortGrain)
                                    : 1;
  if (shards <= 1) {
    std::sort(perm_.begin(), perm_.end(), less);
    return;
  }
  pool->ParallelShards(gen_rows_, kSortGrain,
                       [&](uint32_t /*shard*/, uint64_t begin, uint64_t end) {
                         std::sort(perm_.begin() + begin, perm_.begin() + end,
                                   less);
                       });
  std::vector<uint64_t> bounds;
  bounds.reserve(shards + 1);
  for (uint32_t s = 0; s < shards; ++s) {
    bounds.push_back(ThreadPool::ShardRange(gen_rows_, shards, s).first);
  }
  bounds.push_back(gen_rows_);
  while (bounds.size() > 2) {
    uint64_t pairs = (bounds.size() - 1) / 2;
    pool->ParallelShards(
        pairs, 1, [&](uint32_t /*shard*/, uint64_t pb, uint64_t pe) {
          for (uint64_t p = pb; p < pe; ++p) {
            std::inplace_merge(perm_.begin() + bounds[2 * p],
                               perm_.begin() + bounds[2 * p + 1],
                               perm_.begin() + bounds[2 * p + 2], less);
          }
        });
    std::vector<uint64_t> next;
    size_t segments = bounds.size() - 1;
    for (size_t s = 0; s < segments; s += 2) next.push_back(bounds[s]);
    next.push_back(bounds.back());  // odd trailing segment rides along
    bounds = std::move(next);
  }
}

Status ExternalRowSorter::SpillGeneration() {
  if (gen_rows_ == 0) return Status::OK();
  SortGeneration();
  GHOSTDB_ASSIGN_OR_RETURN(device::RamGuard buf,
                           device::RamGuard::AcquireOne(&ctx_->ram(), tag_));
  storage::RunWriter writer(&ctx_->flash(), ctx_->allocator, buf.data(),
                            tag_);
  const uint8_t* prev = nullptr;
  // Run-write partial fold: hold one pending row; key-equal successors
  // fold into it (the permutation is total-ordered, so the pending row is
  // the group's earliest arrival and keeps the group's smallest sequence).
  std::vector<uint8_t> pending;
  bool have_pending = false;
  for (uint32_t index : perm_) {
    const uint8_t* row = GenRow(index);
    if (fold_ != nullptr) {
      if (have_pending && cmp_.CompareKeys(row, pending.data()) == 0) {
        GHOSTDB_RETURN_NOT_OK(fold_(pending.data(), row));
        continue;
      }
      if (have_pending) {
        GHOSTDB_RETURN_NOT_OK(writer.Append(pending.data(), row_width_));
      }
      pending.assign(row, row + row_width_);
      have_pending = true;
      continue;
    }
    // The permutation is total-ordered (ties by arrival), so the first of
    // a duplicate group is its earliest arrival.
    if (dedup_ && prev != nullptr && cmp_.CompareKeys(row, prev) == 0) {
      continue;
    }
    GHOSTDB_RETURN_NOT_OK(writer.Append(row, row_width_));
    prev = row;
  }
  if (have_pending) {
    GHOSTDB_RETURN_NOT_OK(writer.Append(pending.data(), row_width_));
  }
  GHOSTDB_ASSIGN_OR_RETURN(storage::RunRef run, writer.Finish());
  stats_.runs_written += 1;
  stats_.pages_written += run.page_count();
  runs_.push_back(std::move(run));
  arena_.clear();
  perm_.clear();
  gen_rows_ = 0;
  return Status::OK();
}

Status ExternalRowSorter::PadSpillRuns() {
  const ExecConfig& cfg = *ctx_->config;
  if (!cfg.pad_spill_runs || cfg.volume_padding == VolumePadding::kOff) {
    return Status::OK();
  }
  uint64_t real = stats_.runs_written;
  uint64_t target = real;
  if (cfg.volume_padding == VolumePadding::kQuantize) {
    target = real == 0 ? 0 : NextPowerOfTwo(real);
  } else {
    // Worst case: every sorter this operator instantiated writes the run
    // count a full anchor-sized input would have spilled (generation runs
    // of budget_rows each). Both inputs are visible.
    uint64_t bound = ctx_->padding_row_bound;
    uint64_t worst =
        bound == 0 ? 0 : (bound + budget_rows_ - 1) / budget_rows_;
    target = std::max(real, worst);
  }
  // Dummy runs cost one real flash page each; cap the defense's write
  // amplification at something sane rather than letting a tiny budget
  // against a huge table erase the key.
  constexpr uint64_t kMaxDummyRuns = 256;
  uint64_t dummies = std::min(target - real, kMaxDummyRuns);
  if (dummies == 0) return Status::OK();
  std::vector<uint8_t> zero_row(row_width_, 0);
  GHOSTDB_ASSIGN_OR_RETURN(device::RamGuard buf,
                           device::RamGuard::AcquireOne(&ctx_->ram(), tag_ + "-pad"));
  for (uint64_t i = 0; i < dummies; ++i) {
    storage::RunWriter writer(&ctx_->flash(), ctx_->allocator, buf.data(),
                              tag_);
    GHOSTDB_RETURN_NOT_OK(writer.Append(zero_row.data(), row_width_));
    GHOSTDB_ASSIGN_OR_RETURN(storage::RunRef run, writer.Finish());
    stats_.padding_runs_written += 1;
    stats_.padding_pages_written += run.page_count();
    dummy_runs_.push_back(std::move(run));
  }
  return Status::OK();
}

Status ExternalRowSorter::Finish() {
  if (finished_) return Status::Internal("Finish() called twice");
  finished_ = true;
  if (runs_.empty()) {
    SortGeneration();  // pure in-memory sort, emitted from the arena
    return PadSpillRuns();
  }
  GHOSTDB_RETURN_NOT_OK(SpillGeneration());
  // The final merge streams one reader buffer per run; merge down first if
  // the session's free buffers cannot cover the fan-in. The fan-in is
  // cost-derived from the partition's buffer pool rather than fixed: every
  // reserved buffer forces extra merge-down rounds (each rewrites the
  // merged pages once at row_width_ stride), so the reserve is exactly
  // what the stream's consumer needs while the reader set stays pinned —
  // one generation-spill buffer (the arrival-order phase of Distinct /
  // GroupAggregate keeps absorbing this stream and may itself spill) plus
  // one run-writer buffer for its merge or padding writes. Everything
  // else becomes merge width; with MergeRowRunsBy's minimal-merge policy,
  // wider fan-in strictly reduces rewritten pages. All inputs (budget,
  // stride, buffer counts) are visible, so the merge structure cannot
  // depend on hidden data.
  auto& ram = ctx_->ram();
  uint32_t free = ram.free_buffers();
  constexpr uint32_t kConsumerReserveBuffers = 2;
  size_t fan_in = std::max<size_t>(
      1, free > kConsumerReserveBuffers ? free - kConsumerReserveBuffers : 1);
  if (runs_.size() > fan_in) {
    GHOSTDB_RETURN_NOT_OK(MergeRowRunsBy(&ctx_->flash(), &ram,
                                         ctx_->allocator, &runs_, row_width_,
                                         fan_in, tag_, cmp_, dedup_,
                                         &stats_));
  }
  // Pad after the merge-down so the target covers merge-written runs too,
  // and before the reader buffers pin the remaining RAM.
  GHOSTDB_RETURN_NOT_OK(PadSpillRuns());
  GHOSTDB_ASSIGN_OR_RETURN(
      reader_bufs_,
      device::RamGuard::Acquire(&ram, static_cast<uint32_t>(runs_.size()), tag_));
  for (size_t i = 0; i < runs_.size(); ++i) {
    readers_.push_back(std::make_unique<RowRunReader>(
        &ctx_->flash(), runs_[i], row_width_,
        reader_bufs_.data() + i * ram.buffer_size()));
    GHOSTDB_RETURN_NOT_OK(readers_.back()->Prime());
  }
  current_.resize(row_width_);
  return Status::OK();
}

Result<const uint8_t*> ExternalRowSorter::Next() {
  if (!finished_) return Status::Internal("Next() before Finish()");
  if (runs_.empty()) {
    while (emit_pos_ < perm_.size()) {
      const uint8_t* row = GenRow(perm_[emit_pos_]);
      emit_pos_ += 1;
      if (dedup_ && have_last_ &&
          cmp_.CompareKeys(row, last_emitted_.data()) == 0) {
        continue;
      }
      if (dedup_) {
        last_emitted_.assign(row, row + row_width_);
        have_last_ = true;
      }
      return row;
    }
    return static_cast<const uint8_t*>(nullptr);
  }
  while (true) {
    RowRunReader* best = nullptr;
    for (auto& r : readers_) {
      if (r->valid() &&
          (best == nullptr || cmp_.Compare(r->row(), best->row()) < 0)) {
        best = r.get();
      }
    }
    if (best == nullptr) return static_cast<const uint8_t*>(nullptr);
    std::copy(best->row(), best->row() + row_width_, current_.begin());
    GHOSTDB_RETURN_NOT_OK(best->Advance());
    if (dedup_ && have_last_ &&
        cmp_.CompareKeys(current_.data(), last_emitted_.data()) == 0) {
      continue;
    }
    if (dedup_) {
      last_emitted_ = current_;
      have_last_ = true;
    }
    return current_.data();
  }
}

Status ExternalRowSorter::Close() {
  if (closed_) return Status::OK();
  closed_ = true;
  readers_.clear();
  reader_bufs_.Release();
  Status status = Status::OK();
  for (const storage::RunRef& run : runs_) {
    Status freed = storage::FreeRun(ctx_->allocator, run, tag_);
    if (status.ok()) status = freed;
  }
  runs_.clear();
  for (const storage::RunRef& run : dummy_runs_) {
    Status freed = storage::FreeRun(ctx_->allocator, run, tag_);
    if (status.ok()) status = freed;
  }
  dummy_runs_.clear();
  return status;
}

Status PadUnspilledSorter(ExecContext* ctx, uint32_t stride,
                          const std::string& tag) {
  const ExecConfig& cfg = *ctx->config;
  if (!cfg.pad_spill_runs || cfg.volume_padding == VolumePadding::kOff) {
    return Status::OK();
  }
  uint64_t budget_rows = std::max<uint64_t>(
      1, ctx->sort_budget_bytes / std::max<uint32_t>(1, stride));
  // A zero-row sorter: Finish() writes only the padding mode's dummy-run
  // signature (kWorstCase; kQuantize of 0 real runs stays 0 — its bucket
  // function cannot hide emptiness, a documented resolution limit).
  ExternalRowSorter sorter(ctx, stride,
                           RowComparator::ByKeys({}, stride - kSpillSeqWidth),
                           budget_rows, /*drop_key_duplicates=*/false, tag);
  GHOSTDB_RETURN_NOT_OK(sorter.Finish());
  ctx->metrics->sort_spill_runs += sorter.stats().runs_written;
  ctx->metrics->sort_spill_pages += sorter.stats().pages_written;
  ctx->metrics->padding_spill_runs += sorter.stats().padding_runs_written;
  return sorter.Close();
}

}  // namespace ghostdb::exec

#include "exec/sjoin.h"

#include <cstring>

#include "common/coding.h"

namespace ghostdb::exec {

SJoinStage::SJoinStage(
    flash::FlashDevice* device, const storage::FixedTableRef* skt,
    std::vector<uint32_t> skt_slots, uint8_t* buffer,
    std::function<Status(const uint8_t* row, uint32_t width)> sink)
    : slots_(std::move(skt_slots)),
      sink_(std::move(sink)),
      row_width_(4 + 4 * static_cast<uint32_t>(slots_.size())) {
  if (skt != nullptr && !slots_.empty()) {
    reader_.emplace(device, *skt, buffer);
    skt_row_.resize(skt->row_width);
  }
  out_row_.resize(row_width_);
}

Status SJoinStage::Consume(catalog::RowId anchor_id) {
  EncodeFixed32(out_row_.data(), anchor_id);
  if (reader_.has_value()) {
    GHOSTDB_RETURN_NOT_OK(reader_->ReadRow(anchor_id, skt_row_.data()));
    for (size_t i = 0; i < slots_.size(); ++i) {
      std::memcpy(out_row_.data() + 4 + i * 4,
                  skt_row_.data() + slots_[i] * 4, 4);
    }
  }
  rows_ += 1;
  return sink_(out_row_.data(), row_width_);
}

}  // namespace ghostdb::exec

// Columnar value batches: the wire format of the value-space operators
// (Project upward). A ColumnBatch holds one fixed-width encoded byte
// column per output column — the same encodings catalog::Value::Encode
// produces on flash — plus a selection vector, so filtering operators
// (Distinct, Limit) drop rows without copying and comparison-heavy
// operators (Sort, Distinct) work on encoded bytes via
// catalog::CompareEncoded instead of materializing a Value per cell.
//
// Values are decoded exactly once, at the secure rendering surface
// (SecureExecutor assembling the QueryResult). Nothing here touches the
// channel: batches live entirely in Secure host memory, so their sizes,
// layouts and row counts can depend on Hidden data without observable
// effect — the transcript contract is unchanged from the row-at-a-time
// engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/value.h"
#include "sql/binder.h"

namespace ghostdb::exec {

struct ExecConfig;

/// One fixed-width column of a value-operator edge.
struct BatchColumn {
  catalog::DataType type;
  uint32_t width = 0;  ///< encoded bytes per cell (== on-flash width)
};

/// \brief The column layout of one value-operator edge. Layouts are owned
/// by whoever defines the edge (ExecContext for the projection output,
/// AggregateOp for its aggregate row) and outlive the batches that point
/// at them.
struct BatchLayout {
  std::vector<BatchColumn> cols;
  uint32_t row_width = 0;  ///< sum of column widths

  void Add(catalog::DataType type, uint32_t width) {
    cols.push_back({type, width});
    row_width += width;
  }

  /// Layout of the projection output: one column per SELECT item, carrying
  /// the item's source column encoding (aggregate items carry their input
  /// column; AggregateOp re-layouts above). Surrogate ids are INT/4.
  static BatchLayout Projection(const catalog::Schema& schema,
                                const sql::BoundQuery& query);
};

/// \brief A columnar batch of result rows.
///
/// `rows` physical rows are stored per column; the live rows — the ones the
/// batch logically carries, in stream order — are all physical rows unless
/// `has_selection`, in which case `selection` lists their physical indexes
/// (Sort emits a sorted permutation this way; Distinct/Limit emit subsets).
/// A batch carrying neither live nor skipped rows signals end of stream.
struct ColumnBatch {
  const BatchLayout* layout = nullptr;
  std::vector<std::vector<uint8_t>> columns;  ///< columns[c]: rows × width
  uint32_t rows = 0;                          ///< physical rows stored
  std::vector<uint32_t> selection;            ///< live physical row indexes
  bool has_selection = false;  ///< false: all physical rows live, in order
  /// Rows that passed all filters but were not materialized because the
  /// consumer's demand (ExecContext::rows_demanded) is already met. They
  /// still count toward total_rows.
  uint64_t skipped_rows = 0;
  /// Nonzero marks an all-dummy batch from the VolumePad operator
  /// (padding_rows == live()): its rows pad the observed result volume and
  /// are stripped at the QueryResult boundary. VolumePad is the plan root,
  /// so real and dummy rows never mix within one batch.
  uint64_t padding_rows = 0;
  /// Per-physical-row global ordering keys, populated only when
  /// ExecContext::emit_row_seq is set (sharded scatter runs): the global
  /// anchor id of each projected row. The gather phase k-way merges
  /// per-shard streams on this key to reconstruct the exact single-device
  /// arrival order. Empty otherwise.
  std::vector<uint64_t> seqs;

  /// An empty batch bound to `layout` with per-column space reserved for
  /// `reserve_rows` rows.
  static ColumnBatch Make(const BatchLayout* layout, size_t reserve_rows);

  bool empty() const { return live() == 0 && skipped_rows == 0; }
  /// Number of live rows.
  size_t live() const { return has_selection ? selection.size() : rows; }
  /// Physical index of the i-th live row.
  uint32_t row_at(size_t i) const {
    return has_selection ? selection[i] : static_cast<uint32_t>(i);
  }

  const uint8_t* cell(size_t c, uint32_t physical_row) const {
    return columns[c].data() +
           static_cast<size_t>(physical_row) * layout->cols[c].width;
  }
  /// Grows column `c` by one cell and returns its writable bytes. Append
  /// every column of a row, then CommitRow().
  uint8_t* AppendCell(size_t c) {
    auto& col = columns[c];
    size_t base = col.size();
    col.resize(base + layout->cols[c].width);
    return col.data() + base;
  }
  /// Appends one already-encoded cell to column `c` (no zero-fill pass).
  void AppendBytes(size_t c, const uint8_t* src) {
    columns[c].insert(columns[c].end(), src, src + layout->cols[c].width);
  }
  void CommitRow() { rows += 1; }

  catalog::Value DecodeCell(size_t c, uint32_t physical_row) const {
    const BatchColumn& col = layout->cols[c];
    return catalog::Value::Decode(cell(c, physical_row), col.type,
                                  col.width);
  }
  /// Appends the canonicalized encoded bytes of one cell to `out`. Byte
  /// equality of the appended bytes coincides with Value equality: strings
  /// are space-padded, integers are bijective, and double zeros are
  /// canonicalized here (-0.0 == 0.0 with distinct bit patterns). The
  /// building block of RowKey and GroupAggregateOp's group keys.
  void AppendCellKey(size_t c, uint32_t physical_row, std::string* out) const;
  /// Concatenated canonical encoded bytes of one physical row — the
  /// DISTINCT key.
  void RowKey(uint32_t physical_row, std::string* out) const;
};

/// Rows per ColumnBatch for `layout` under `config`: the byte budget
/// divided by the output row width, clamped to the configured bounds. A
/// pure function of the visible query shape and schema, so the planner can
/// size batches at plan time and cache the result.
uint32_t SizeBatchRows(const BatchLayout& layout, const ExecConfig& config);

}  // namespace ghostdb::exec

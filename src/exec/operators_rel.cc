#include "exec/operators_rel.h"

#include <algorithm>
#include <cstring>
#include <numeric>

namespace ghostdb::exec {

using catalog::Value;

// ---------------------------------------------------------------------------
// AggregateOp
// ---------------------------------------------------------------------------

Status AggregateOp::Open() {
  GHOSTDB_RETURN_NOT_OK(Operator::Open());
  const BatchLayout& in = *ctx_->value_layout;
  for (size_t i = 0; i < ctx_->query->select.size(); ++i) {
    const auto& item = ctx_->query->select[i];
    aggregators_.emplace_back(item.agg, in.cols[i].type, in.cols[i].width);
    catalog::DataType out_type = aggregators_.back().OutputType();
    // MIN/MAX keep the input encoding (strings keep their declared width);
    // COUNT/SUM/AVG emit fixed numerics.
    uint32_t out_width = out_type == in.cols[i].type
                             ? in.cols[i].width
                             : catalog::FixedWidth(out_type);
    out_layout_.Add(out_type, out_width);
  }
  return Status::OK();
}

Result<ColumnBatch> AggregateOp::Next() {
  if (done_) return ColumnBatch{};
  const auto& select = ctx_->query->select;
  while (true) {
    GHOSTDB_ASSIGN_OR_RETURN(ColumnBatch batch, child()->Next());
    if (batch.empty()) break;
    for (size_t r = 0; r < batch.live(); ++r) {
      uint32_t row = batch.row_at(r);
      for (size_t i = 0; i < select.size(); ++i) {
        if (select[i].agg == AggFunc::kCountStar) {
          aggregators_[i].AccumulateRow();
        } else {
          GHOSTDB_RETURN_NOT_OK(
              aggregators_[i].AccumulateEncoded(batch.cell(i, row)));
        }
      }
    }
  }
  done_ = true;
  ColumnBatch out = ColumnBatch::Make(&out_layout_, 1);
  for (size_t i = 0; i < aggregators_.size(); ++i) {
    GHOSTDB_ASSIGN_OR_RETURN(Value v, aggregators_[i].Finish());
    v.Encode(out.AppendCell(i), out_layout_.cols[i].width);
  }
  out.CommitRow();
  return out;
}

// ---------------------------------------------------------------------------
// DistinctOp
// ---------------------------------------------------------------------------

Result<ColumnBatch> DistinctOp::Next() {
  // Per child batch: keep the live rows whose encoded bytes are new, as a
  // selection over the same batch (RowKey keeps byte equality aligned with
  // value equality). Loop past all-duplicate batches — an empty batch
  // would end the stream.
  std::string key;
  while (!child_done_) {
    GHOSTDB_ASSIGN_OR_RETURN(ColumnBatch batch, child()->Next());
    if (batch.empty()) {
      child_done_ = true;
      break;
    }
    std::vector<uint32_t> keep;
    for (size_t r = 0; r < batch.live(); ++r) {
      uint32_t row = batch.row_at(r);
      batch.RowKey(row, &key);
      if (seen_.insert(key).second) keep.push_back(row);
    }
    batch.skipped_rows = 0;
    if (!keep.empty()) {
      batch.selection = std::move(keep);
      batch.has_selection = true;
      return batch;
    }
  }
  return ColumnBatch{};
}

// ---------------------------------------------------------------------------
// SortOp
// ---------------------------------------------------------------------------

Result<ColumnBatch> SortOp::Next() {
  if (done_) return ColumnBatch{};
  done_ = true;
  // Blocking gather: densify the child's live rows into one batch (the
  // working set is held either way; batches do not share storage).
  while (true) {
    GHOSTDB_ASSIGN_OR_RETURN(ColumnBatch batch, child()->Next());
    if (batch.empty()) break;
    if (data_.layout == nullptr) {
      data_ = ColumnBatch::Make(batch.layout, batch.live());
    }
    if (!batch.has_selection) {
      // Dense batch: append each column region in one go.
      for (size_t c = 0; c < batch.layout->cols.size(); ++c) {
        data_.columns[c].insert(data_.columns[c].end(),
                                batch.columns[c].begin(),
                                batch.columns[c].end());
      }
      data_.rows += batch.rows;
      continue;
    }
    for (size_t r = 0; r < batch.live(); ++r) {
      uint32_t row = batch.row_at(r);
      for (size_t c = 0; c < batch.layout->cols.size(); ++c) {
        data_.AppendBytes(c, batch.cell(c, row));
      }
      data_.CommitRow();
    }
  }
  if (data_.layout == nullptr) return ColumnBatch{};

  // Stable sort of a permutation, comparing encoded key cells in place;
  // ties keep arrival (anchor-id) order. The permutation becomes the
  // selection vector of the single output batch.
  const auto& keys = ctx_->query->order_by;
  std::vector<uint32_t> perm(data_.rows);
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(
      perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
        for (const auto& key : keys) {
          const BatchColumn& col = data_.layout->cols[key.select_index];
          int cmp = catalog::CompareEncoded(
              col.type, col.width, data_.cell(key.select_index, a),
              data_.cell(key.select_index, b));
          if (cmp != 0) return key.descending ? cmp > 0 : cmp < 0;
        }
        return false;
      });
  data_.selection = std::move(perm);
  data_.has_selection = true;
  return std::move(data_);
}

// ---------------------------------------------------------------------------
// LimitOp
// ---------------------------------------------------------------------------

Result<ColumnBatch> LimitOp::Next() {
  if (emitted_ >= limit_) return ColumnBatch{};
  GHOSTDB_ASSIGN_OR_RETURN(ColumnBatch batch, child()->Next());
  if (batch.empty()) return batch;
  uint64_t room = limit_ - emitted_;
  if (batch.live() > room) {
    std::vector<uint32_t> keep;
    keep.reserve(static_cast<size_t>(room));
    for (size_t r = 0; r < room; ++r) keep.push_back(batch.row_at(r));
    batch.selection = std::move(keep);
    batch.has_selection = true;
  }
  batch.skipped_rows = 0;  // rows beyond the limit do not exist
  emitted_ += batch.live();
  return batch;
}

}  // namespace ghostdb::exec

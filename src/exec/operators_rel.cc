#include "exec/operators_rel.h"

#include <algorithm>
#include <cstring>
#include <numeric>

namespace ghostdb::exec {

using catalog::Value;

namespace {

// ---------------------------------------------------------------------------
// Spill-row helpers: a spill row is the concatenated encoded cells of one
// output row plus a trailing u64 arrival sequence (kSpillSeqWidth), which
// makes every comparator total and every sort stable.
// ---------------------------------------------------------------------------

std::vector<uint32_t> ColumnOffsets(const BatchLayout& layout) {
  std::vector<uint32_t> offsets(layout.cols.size());
  uint32_t off = 0;
  for (size_t c = 0; c < layout.cols.size(); ++c) {
    offsets[c] = off;
    off += layout.cols[c].width;
  }
  return offsets;
}

void PackRow(const ColumnBatch& batch, uint32_t physical_row,
             const std::vector<uint32_t>& offsets, uint64_t seq,
             uint8_t* row_buf) {
  for (size_t c = 0; c < batch.layout->cols.size(); ++c) {
    std::memcpy(row_buf + offsets[c], batch.cell(c, physical_row),
                batch.layout->cols[c].width);
  }
  EncodeFixed64(row_buf + batch.layout->row_width, seq);
}

/// ORDER BY keys over the spill-row encoding, ties by arrival.
RowComparator OrderByComparator(const BatchLayout& layout,
                                const std::vector<uint32_t>& offsets,
                                const std::vector<sql::BoundOrderKey>& keys) {
  std::vector<RowComparator::Key> cmp_keys;
  for (const auto& key : keys) {
    const BatchColumn& col = layout.cols[key.select_index];
    cmp_keys.push_back(
        {offsets[key.select_index], col.type, col.width, key.descending});
  }
  return RowComparator::ByKeys(std::move(cmp_keys), layout.row_width);
}

/// Relational-tail row budget for rows of `stride` bytes.
uint64_t BudgetRows(const ExecContext* ctx, uint32_t stride) {
  return std::max<uint64_t>(1, ctx->sort_budget_bytes / stride);
}

/// Appends one spill row's cells (sequence stripped) to a dense batch.
void AppendSpillRow(ColumnBatch* out, const std::vector<uint32_t>& offsets,
                    const uint8_t* row) {
  for (size_t c = 0; c < out->layout->cols.size(); ++c) {
    out->AppendBytes(c, row + offsets[c]);
  }
  out->CommitRow();
}

/// Morsel-parallel canonical-key extraction for the hash phases of
/// Distinct/GroupAggregate: keys of every live row land in index-addressed
/// slots of `keys` (reused across batches), computed across the pool.
/// `key_items` selects the key columns (null = whole row). The fold loop
/// that consumes the keys stays sequential — the spill-trip row, the
/// first-arrival group order, and the FP accumulation order are observable
/// contract, so only this pure per-row compute may fan out.
void ExtractKeys(ExecContext* ctx, const ColumnBatch& batch,
                 const std::vector<size_t>* key_items,
                 std::vector<std::string>* keys) {
  size_t n = batch.live();
  keys->resize(n);
  auto body = [&](uint32_t /*shard*/, uint64_t begin, uint64_t end) {
    for (uint64_t r = begin; r < end; ++r) {
      std::string& key = (*keys)[r];
      key.clear();
      uint32_t row = batch.row_at(r);
      if (key_items == nullptr) {
        batch.RowKey(row, &key);
      } else {
        for (size_t i : *key_items) batch.AppendCellKey(i, row, &key);
      }
    }
  };
  constexpr uint64_t kKeyGrain = 256;
  if (ctx->pool != nullptr && ctx->pool->ShardCount(n, kKeyGrain) > 1) {
    ctx->pool->ParallelShards(n, kKeyGrain, body);
  } else {
    body(0, 0, n);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// AggregateOp
// ---------------------------------------------------------------------------

Status AggregateOp::Open() {
  GHOSTDB_RETURN_NOT_OK(Operator::Open());
  const BatchLayout& in = *ctx_->value_layout;
  for (size_t i = 0; i < ctx_->query->select.size(); ++i) {
    const auto& item = ctx_->query->select[i];
    aggregators_.emplace_back(item.agg, in.cols[i].type, in.cols[i].width);
    catalog::DataType out_type = aggregators_.back().OutputType();
    // MIN/MAX keep the input encoding (strings keep their declared width);
    // COUNT/SUM/AVG emit fixed numerics.
    uint32_t out_width = out_type == in.cols[i].type
                             ? in.cols[i].width
                             : catalog::FixedWidth(out_type);
    out_layout_.Add(out_type, out_width);
  }
  return Status::OK();
}

Result<ColumnBatch> AggregateOp::Next() {
  if (done_) return ColumnBatch{};
  const auto& select = ctx_->query->select;
  while (true) {
    GHOSTDB_ASSIGN_OR_RETURN(ColumnBatch batch, child()->Next());
    if (batch.empty()) break;
    for (size_t r = 0; r < batch.live(); ++r) {
      uint32_t row = batch.row_at(r);
      for (size_t i = 0; i < select.size(); ++i) {
        if (select[i].agg == AggFunc::kCountStar) {
          aggregators_[i].AccumulateRow();
        } else {
          GHOSTDB_RETURN_NOT_OK(
              aggregators_[i].AccumulateEncoded(batch.cell(i, row)));
        }
      }
    }
  }
  done_ = true;
  // GhostDB has no NULLs, so SQL's "one row of NULLs" for value aggregates
  // over an empty input becomes an empty result instead: SUM/AVG/MIN/MAX
  // with nothing to fold emit no row (COUNT-only selects keep their zero
  // row). The reference oracle enforces the same rule.
  for (size_t i = 0; i < aggregators_.size(); ++i) {
    if (AggRequiresInput(select[i].agg) && !aggregators_[i].has_input()) {
      return ColumnBatch{};
    }
  }
  ColumnBatch out = ColumnBatch::Make(&out_layout_, 1);
  for (size_t i = 0; i < aggregators_.size(); ++i) {
    GHOSTDB_ASSIGN_OR_RETURN(Value v, aggregators_[i].Finish());
    v.Encode(out.AppendCell(i), out_layout_.cols[i].width);
  }
  out.CommitRow();
  return out;
}

// ---------------------------------------------------------------------------
// GroupAggregateOp
// ---------------------------------------------------------------------------

namespace {

/// Budget estimate for one resident hash group: the canonical map key plus
/// the raw key cells (both key_width bytes), the accumulators, and a fixed
/// container overhead. A pure function of the visible query shape.
size_t GroupBytes(size_t key_width, size_t agg_count) {
  return 2 * key_width + agg_count * sizeof(Aggregator) + 64;
}

}  // namespace

Status GroupAggregateOp::Open() {
  GHOSTDB_RETURN_NOT_OK(Operator::Open());
  in_layout_ = ctx_->value_layout;
  in_offsets_ = ColumnOffsets(*in_layout_);
  const auto& select = ctx_->query->select;
  for (size_t i = 0; i < select.size(); ++i) {
    const BatchColumn& in = in_layout_->cols[i];
    if (select[i].agg == AggFunc::kNone) {
      key_items_.push_back(i);
      out_layout_.Add(in.type, in.width);
    } else {
      agg_items_.push_back(i);
      Aggregator probe(select[i].agg, in.type, in.width);
      catalog::DataType out_type = probe.OutputType();
      uint32_t out_width = out_type == in.type ? in.width
                                               : catalog::FixedWidth(out_type);
      out_layout_.Add(out_type, out_width);
    }
  }
  out_offsets_ = ColumnOffsets(out_layout_);
  row_buf_.resize(in_layout_->row_width + kSpillSeqWidth);
  out_buf_.resize(out_layout_.row_width + kSpillSeqWidth);
  std::vector<RowComparator::Key> keys;
  for (size_t i : key_items_) {
    keys.push_back({in_offsets_[i], in_layout_->cols[i].type,
                    in_layout_->cols[i].width, false});
  }
  key_cmp_ = RowComparator::ByKeys(std::move(keys), in_layout_->row_width);
  return Status::OK();
}

std::vector<Aggregator> GroupAggregateOp::MakeAggregators() const {
  std::vector<Aggregator> aggs;
  aggs.reserve(agg_items_.size());
  for (size_t i : agg_items_) {
    aggs.emplace_back(ctx_->query->select[i].agg, in_layout_->cols[i].type,
                      in_layout_->cols[i].width);
  }
  return aggs;
}

Status GroupAggregateOp::AccumulateInto(Group* g, const ColumnBatch& batch,
                                        uint32_t row) {
  for (size_t j = 0; j < agg_items_.size(); ++j) {
    size_t i = agg_items_[j];
    if (ctx_->query->select[i].agg == AggFunc::kCountStar) {
      g->aggs[j].AccumulateRow();
    } else {
      GHOSTDB_RETURN_NOT_OK(g->aggs[j].AccumulateEncoded(batch.cell(i, row)));
    }
  }
  return Status::OK();
}

Status GroupAggregateOp::AccumulatePacked(std::vector<Aggregator>* aggs,
                                          const uint8_t* row) {
  for (size_t j = 0; j < agg_items_.size(); ++j) {
    size_t i = agg_items_[j];
    if (ctx_->query->select[i].agg == AggFunc::kCountStar) {
      (*aggs)[j].AccumulateRow();
    } else {
      GHOSTDB_RETURN_NOT_OK(
          (*aggs)[j].AccumulateEncoded(row + in_offsets_[i]));
    }
  }
  return Status::OK();
}

Status GroupAggregateOp::StartSpill() {
  // Phase A clusters rows of one group adjacently (key cells ascending;
  // CompareEncoded makes ±0.0 doubles one group, matching the canonical
  // hash key) with arrival ties, so each group's rows stream out in
  // arrival order — aggregates fold in exactly the order the hash path
  // folds them, and the group's first row (whose raw key cells the output
  // shows) pops first.
  uint32_t stride = in_layout_->row_width + kSpillSeqWidth;
  by_key_ = std::make_unique<ExternalRowSorter>(
      ctx_, stride, key_cmp_, BudgetRows(ctx_, stride),
      /*drop_key_duplicates=*/false, "group-spill");
  return Status::OK();
}

Status GroupAggregateOp::FlushSpillGroup(const uint8_t* first_row,
                                         std::vector<Aggregator>* aggs) {
  size_t agg_idx = 0;
  for (size_t i = 0; i < out_layout_.cols.size(); ++i) {
    if (ctx_->query->select[i].agg == AggFunc::kNone) {
      std::memcpy(out_buf_.data() + out_offsets_[i],
                  first_row + in_offsets_[i], in_layout_->cols[i].width);
    } else {
      GHOSTDB_ASSIGN_OR_RETURN(Value v, (*aggs)[agg_idx++].Finish());
      v.Encode(out_buf_.data() + out_offsets_[i], out_layout_.cols[i].width);
    }
  }
  // Phase B restores first-arrival order over the folded groups.
  EncodeFixed64(out_buf_.data() + out_layout_.row_width,
                DecodeFixed64(first_row + in_layout_->row_width));
  return by_arrival_->Add(out_buf_.data());
}

Status GroupAggregateOp::FinishSpill() {
  GHOSTDB_RETURN_NOT_OK(by_key_->Finish());
  uint32_t out_stride = out_layout_.row_width + kSpillSeqWidth;
  by_arrival_ = std::make_unique<ExternalRowSorter>(
      ctx_, out_stride, RowComparator::ByKeys({}, out_layout_.row_width),
      BudgetRows(ctx_, out_stride), /*drop_key_duplicates=*/false,
      "group-arrival");
  std::vector<uint8_t> first_row;  // current group's first packed row
  std::vector<Aggregator> aggs;
  while (true) {
    GHOSTDB_ASSIGN_OR_RETURN(const uint8_t* row, by_key_->Next());
    if (row == nullptr) break;
    if (!first_row.empty() &&
        key_cmp_.CompareKeys(row, first_row.data()) == 0) {
      GHOSTDB_RETURN_NOT_OK(AccumulatePacked(&aggs, row));
      continue;
    }
    if (!first_row.empty()) {
      GHOSTDB_RETURN_NOT_OK(FlushSpillGroup(first_row.data(), &aggs));
    }
    first_row.assign(row, row + row_buf_.size());
    aggs = MakeAggregators();
    GHOSTDB_RETURN_NOT_OK(AccumulatePacked(&aggs, row));
  }
  if (!first_row.empty()) {
    GHOSTDB_RETURN_NOT_OK(FlushSpillGroup(first_row.data(), &aggs));
  }
  ctx_->metrics->sort_spill_runs += by_key_->stats().runs_written;
  ctx_->metrics->sort_spill_pages += by_key_->stats().pages_written;
  ctx_->metrics->padding_spill_runs += by_key_->stats().padding_runs_written;
  GHOSTDB_RETURN_NOT_OK(by_key_->Close());  // phase A flash freed here
  by_key_.reset();
  return by_arrival_->Finish();
}

Result<ColumnBatch> GroupAggregateOp::Emit() {
  ColumnBatch out = ColumnBatch::Make(
      &out_layout_, std::min<uint64_t>(ctx_->batch_rows, 256));
  while (out.rows < ctx_->batch_rows) {
    if (emit_group_ < groups_.size()) {
      Group& g = groups_[emit_group_++];
      size_t key_off = 0, agg_idx = 0;
      for (size_t i = 0; i < out_layout_.cols.size(); ++i) {
        if (ctx_->query->select[i].agg == AggFunc::kNone) {
          out.AppendBytes(i, g.key_cells.data() + key_off);
          key_off += in_layout_->cols[i].width;
        } else {
          GHOSTDB_ASSIGN_OR_RETURN(Value v, g.aggs[agg_idx++].Finish());
          v.Encode(out.AppendCell(i), out_layout_.cols[i].width);
        }
      }
      out.CommitRow();
      continue;
    }
    if (by_arrival_ == nullptr) break;
    GHOSTDB_ASSIGN_OR_RETURN(const uint8_t* row, by_arrival_->Next());
    if (row == nullptr) break;
    for (size_t c = 0; c < out_layout_.cols.size(); ++c) {
      out.AppendBytes(c, row + out_offsets_[c]);
    }
    out.CommitRow();
  }
  if (out.rows == 0) done_ = true;
  return out;
}

Result<ColumnBatch> GroupAggregateOp::Next() {
  if (done_) return ColumnBatch{};
  if (emitting_) return Emit();
  while (true) {
    GHOSTDB_ASSIGN_OR_RETURN(ColumnBatch batch, child()->Next());
    if (batch.empty()) break;
    // Keys precomputed morsel-parallel; the fold below is sequential so
    // the budget trips at the exact same row for every thread count.
    ExtractKeys(ctx_, batch, &key_items_, &key_scratch_);
    for (size_t r = 0; r < batch.live(); ++r) {
      uint32_t row = batch.row_at(r);
      uint64_t seq = seq_++;
      const std::string& key = key_scratch_[r];
      // Known groups — frozen or not — keep folding in place: no new
      // memory either way.
      auto it = index_.find(std::string_view(key));
      if (it != index_.end()) {
        GHOSTDB_RETURN_NOT_OK(
            AccumulateInto(&groups_[it->second], batch, row));
        continue;
      }
      if (!spilling_) {
        size_t group_bytes = GroupBytes(key.size(), agg_items_.size());
        if (table_bytes_ + group_bytes > ctx_->sort_budget_bytes) {
          if (!ctx_->config->spill_enabled) {
            return Status::ResourceExhausted(
                "group table exceeds the relational-tail budget (" +
                std::to_string(ctx_->sort_budget_bytes) +
                " bytes) and spilling is disabled");
          }
          GHOSTDB_RETURN_NOT_OK(StartSpill());
          spilling_ = true;
        } else {
          Group g;
          g.key_cells.reserve(key.size());
          for (size_t i : key_items_) {
            const uint8_t* src = batch.cell(i, row);
            g.key_cells.insert(g.key_cells.end(), src,
                               src + in_layout_->cols[i].width);
          }
          g.aggs = MakeAggregators();
          GHOSTDB_RETURN_NOT_OK(AccumulateInto(&g, batch, row));
          index_.emplace(key, groups_.size());
          groups_.push_back(std::move(g));
          table_bytes_ += group_bytes;
          continue;
        }
      }
      // A new group past the budget: reroute the row through sort-based
      // grouping.
      PackRow(batch, row, in_offsets_, seq, row_buf_.data());
      GHOSTDB_RETURN_NOT_OK(by_key_->Add(row_buf_.data()));
    }
  }
  if (spilling_) GHOSTDB_RETURN_NOT_OK(FinishSpill());
  emitting_ = true;
  return Emit();
}

Status GroupAggregateOp::Close() {
  // by_key_ outlives FinishSpill only when the stream was abandoned early;
  // fold whatever spill work actually happened either way.
  for (auto* sorter : {by_key_.get(), by_arrival_.get()}) {
    if (sorter == nullptr) continue;
    ctx_->metrics->sort_spill_runs += sorter->stats().runs_written;
    ctx_->metrics->sort_spill_pages += sorter->stats().pages_written;
    ctx_->metrics->padding_spill_runs += sorter->stats().padding_runs_written;
    GHOSTDB_RETURN_NOT_OK(sorter->Close());
  }
  return Operator::Close();
}

// ---------------------------------------------------------------------------
// DistinctOp
// ---------------------------------------------------------------------------

void DistinctOp::BindLayout(const ColumnBatch& batch) {
  layout_ = batch.layout;
  offsets_ = ColumnOffsets(*layout_);
  row_buf_.resize(layout_->row_width + kSpillSeqWidth);
}

Status DistinctOp::StartSpill() {
  // Phase A orders by every output column ascending (any total order over
  // the row value works — it only has to cluster duplicates), ties by
  // arrival so the earliest occurrence of each value pops first.
  uint32_t stride = layout_->row_width + kSpillSeqWidth;
  std::vector<RowComparator::Key> keys;
  for (size_t c = 0; c < layout_->cols.size(); ++c) {
    keys.push_back(
        {offsets_[c], layout_->cols[c].type, layout_->cols[c].width, false});
  }
  by_value_ = std::make_unique<ExternalRowSorter>(
      ctx_, stride, RowComparator::ByKeys(std::move(keys), layout_->row_width),
      BudgetRows(ctx_, stride), /*drop_key_duplicates=*/true,
      "distinct-spill");
  return Status::OK();
}

Status DistinctOp::SpillRow(const ColumnBatch& batch, uint32_t row,
                            const std::string& key) {
  uint64_t seq = seq_++;
  // Keys emitted by the hash phase stay authoritative: anything already in
  // the frozen set is a duplicate of a row that already left the operator.
  if (seen_.find(std::string_view(key)) != seen_.end()) return Status::OK();
  PackRow(batch, row, offsets_, seq, row_buf_.data());
  return by_value_->Add(row_buf_.data());
}

Status DistinctOp::FinishSpill() {
  GHOSTDB_RETURN_NOT_OK(by_value_->Finish());
  // Phase B restores arrival order over the surviving (unique) rows, so
  // the output is exactly the hash path's: first occurrences, in order.
  uint32_t stride = layout_->row_width + kSpillSeqWidth;
  by_arrival_ = std::make_unique<ExternalRowSorter>(
      ctx_, stride, RowComparator::ByKeys({}, layout_->row_width),
      BudgetRows(ctx_, stride), /*drop_key_duplicates=*/false,
      "distinct-arrival");
  while (true) {
    GHOSTDB_ASSIGN_OR_RETURN(const uint8_t* row, by_value_->Next());
    if (row == nullptr) break;
    GHOSTDB_RETURN_NOT_OK(by_arrival_->Add(row));
  }
  ctx_->metrics->sort_spill_runs += by_value_->stats().runs_written;
  ctx_->metrics->sort_spill_pages += by_value_->stats().pages_written;
  ctx_->metrics->padding_spill_runs += by_value_->stats().padding_runs_written;
  GHOSTDB_RETURN_NOT_OK(by_value_->Close());  // phase A flash freed here
  by_value_.reset();
  return by_arrival_->Finish();
}

Result<ColumnBatch> DistinctOp::EmitSpilled() {
  ColumnBatch out = ColumnBatch::Make(
      layout_, std::min<uint64_t>(ctx_->batch_rows, 256));
  while (out.rows < ctx_->batch_rows) {
    GHOSTDB_ASSIGN_OR_RETURN(const uint8_t* row, by_arrival_->Next());
    if (row == nullptr) break;
    AppendSpillRow(&out, offsets_, row);
  }
  return out;  // empty batch = end of stream
}

Result<ColumnBatch> DistinctOp::Next() {
  if (emitting_) return EmitSpilled();
  // Streaming hash phase: per child batch, keep the live rows whose encoded
  // bytes are new, as a selection over the same batch (RowKey keeps byte
  // equality aligned with value equality). Loop past all-duplicate batches
  // — an empty batch would end the stream.
  while (!child_done_) {
    GHOSTDB_ASSIGN_OR_RETURN(ColumnBatch batch, child()->Next());
    if (batch.empty()) {
      child_done_ = true;
      break;
    }
    if (layout_ == nullptr) BindLayout(batch);
    // Keys precomputed morsel-parallel; the sequential pass below keeps
    // the budget trip and output order identical for every thread count.
    ExtractKeys(ctx_, batch, nullptr, &key_scratch_);
    std::vector<uint32_t> keep;
    for (size_t r = 0; r < batch.live(); ++r) {
      uint32_t row = batch.row_at(r);
      const std::string& key = key_scratch_[r];
      if (spilling_) {
        GHOSTDB_RETURN_NOT_OK(SpillRow(batch, row, key));
        continue;
      }
      if (seen_.find(std::string_view(key)) != seen_.end()) {
        seq_ += 1;
        continue;
      }
      if (seen_bytes_ + key.size() > ctx_->sort_budget_bytes) {
        if (!ctx_->config->spill_enabled) {
          return Status::ResourceExhausted(
              "distinct set exceeds the relational-tail budget (" +
              std::to_string(ctx_->sort_budget_bytes) +
              " bytes) and spilling is disabled");
        }
        GHOSTDB_RETURN_NOT_OK(StartSpill());
        spilling_ = true;
        GHOSTDB_RETURN_NOT_OK(SpillRow(batch, row, key));
        continue;
      }
      seen_.insert(key);  // only genuinely new keys allocate
      seen_bytes_ += key.size();
      keep.push_back(row);
      seq_ += 1;
    }
    batch.skipped_rows = 0;
    if (!keep.empty()) {
      batch.selection = std::move(keep);
      batch.has_selection = true;
      return batch;
    }
  }
  if (!spilling_) return ColumnBatch{};
  GHOSTDB_RETURN_NOT_OK(FinishSpill());
  emitting_ = true;
  return EmitSpilled();
}

Status DistinctOp::Close() {
  // by_value_ outlives FinishSpill only when the stream was abandoned
  // early; fold whatever spill work actually happened either way.
  for (auto* sorter : {by_value_.get(), by_arrival_.get()}) {
    if (sorter == nullptr) continue;
    ctx_->metrics->sort_spill_runs += sorter->stats().runs_written;
    ctx_->metrics->sort_spill_pages += sorter->stats().pages_written;
    ctx_->metrics->padding_spill_runs += sorter->stats().padding_runs_written;
    GHOSTDB_RETURN_NOT_OK(sorter->Close());
  }
  return Operator::Close();
}

// ---------------------------------------------------------------------------
// SortOp
// ---------------------------------------------------------------------------

Status SortOp::Gather() {
  while (true) {
    GHOSTDB_ASSIGN_OR_RETURN(ColumnBatch batch, child()->Next());
    if (batch.empty()) break;
    if (layout_ == nullptr) {
      layout_ = batch.layout;
      offsets_ = ColumnOffsets(*layout_);
      uint32_t stride = layout_->row_width + kSpillSeqWidth;
      row_buf_.resize(stride);
      sorter_ = std::make_unique<ExternalRowSorter>(
          ctx_, stride,
          OrderByComparator(*layout_, offsets_, ctx_->query->order_by),
          BudgetRows(ctx_, stride), /*drop_key_duplicates=*/false,
          "sort-spill");
    }
    for (size_t r = 0; r < batch.live(); ++r) {
      PackRow(batch, batch.row_at(r), offsets_, seq_++, row_buf_.data());
      GHOSTDB_RETURN_NOT_OK(sorter_->Add(row_buf_.data()));
    }
  }
  if (sorter_ != nullptr) GHOSTDB_RETURN_NOT_OK(sorter_->Finish());
  return Status::OK();
}

Result<ColumnBatch> SortOp::Next() {
  if (done_) return ColumnBatch{};
  if (!gathered_) {
    GHOSTDB_RETURN_NOT_OK(Gather());
    gathered_ = true;
  }
  if (layout_ == nullptr) {  // empty input stream
    done_ = true;
    return ColumnBatch{};
  }
  ColumnBatch out = ColumnBatch::Make(
      layout_, std::min<uint64_t>(ctx_->batch_rows, 256));
  while (out.rows < ctx_->batch_rows) {
    GHOSTDB_ASSIGN_OR_RETURN(const uint8_t* row, sorter_->Next());
    if (row == nullptr) {
      done_ = true;
      break;
    }
    AppendSpillRow(&out, offsets_, row);
  }
  return out;
}

Status SortOp::Close() {
  if (sorter_ != nullptr) {
    ctx_->metrics->sort_spill_runs += sorter_->stats().runs_written;
    ctx_->metrics->sort_spill_pages += sorter_->stats().pages_written;
    ctx_->metrics->padding_spill_runs += sorter_->stats().padding_runs_written;
    GHOSTDB_RETURN_NOT_OK(sorter_->Close());
  }
  return Operator::Close();
}

// ---------------------------------------------------------------------------
// TopKSortOp
// ---------------------------------------------------------------------------

Status TopKSortOp::Offer(const uint8_t* row) {
  auto heap_less = [this](uint32_t a, uint32_t b) {
    return cmp_.Compare(Slot(a), Slot(b)) < 0;
  };
  if (heap_.size() < k_) {
    uint32_t slot = static_cast<uint32_t>(heap_.size());
    arena_.insert(arena_.end(), row, row + stride_);
    heap_.push_back(slot);
    std::push_heap(heap_.begin(), heap_.end(), heap_less);
    return Status::OK();
  }
  // Heap top = the worst kept row. A later arrival with equal keys
  // compares greater (arrival tie-break), so it is rejected — exactly the
  // stable Sort -> Limit semantics.
  if (cmp_.Compare(row, Slot(heap_.front())) >= 0) {
    short_circuits_ += 1;
    return Status::OK();
  }
  std::pop_heap(heap_.begin(), heap_.end(), heap_less);
  uint32_t slot = heap_.back();
  std::copy(row, row + stride_,
            arena_.begin() + static_cast<size_t>(slot) * stride_);
  std::push_heap(heap_.begin(), heap_.end(), heap_less);
  return Status::OK();
}

Status TopKSortOp::Gather() {
  while (true) {
    GHOSTDB_ASSIGN_OR_RETURN(ColumnBatch batch, child()->Next());
    if (batch.empty()) break;
    if (layout_ == nullptr) {
      layout_ = batch.layout;
      offsets_ = ColumnOffsets(*layout_);
      stride_ = layout_->row_width + kSpillSeqWidth;
      row_buf_.resize(stride_);
      cmp_ = OrderByComparator(*layout_, offsets_, ctx_->query->order_by);
      if (k_ > BudgetRows(ctx_, stride_)) {
        // The heap itself would exceed the budget: degrade to the spilling
        // sort, truncated at k rows on the way out.
        sorter_ = std::make_unique<ExternalRowSorter>(
            ctx_, stride_, cmp_, BudgetRows(ctx_, stride_),
            /*drop_key_duplicates=*/false, "topk-spill");
      } else {
        arena_.reserve(static_cast<size_t>(k_) * stride_);
      }
    }
    for (size_t r = 0; r < batch.live(); ++r) {
      PackRow(batch, batch.row_at(r), offsets_, seq_++, row_buf_.data());
      if (sorter_ != nullptr) {
        GHOSTDB_RETURN_NOT_OK(sorter_->Add(row_buf_.data()));
      } else {
        GHOSTDB_RETURN_NOT_OK(Offer(row_buf_.data()));
      }
    }
  }
  if (sorter_ != nullptr) {
    GHOSTDB_RETURN_NOT_OK(sorter_->Finish());
  } else {
    order_ = heap_;
    std::sort(order_.begin(), order_.end(), [this](uint32_t a, uint32_t b) {
      return cmp_.Compare(Slot(a), Slot(b)) < 0;
    });
  }
  return Status::OK();
}

Result<ColumnBatch> TopKSortOp::Next() {
  if (done_) return ColumnBatch{};
  if (k_ == 0) {  // LIMIT 0 never pulls the child, like LimitOp
    done_ = true;
    return ColumnBatch{};
  }
  if (!gathered_) {
    GHOSTDB_RETURN_NOT_OK(Gather());
    gathered_ = true;
  }
  if (layout_ == nullptr) {
    done_ = true;
    return ColumnBatch{};
  }
  ColumnBatch out = ColumnBatch::Make(
      layout_, std::min<uint64_t>(std::min<uint64_t>(ctx_->batch_rows, k_),
                                  256));
  if (sorter_ != nullptr) {
    while (out.rows < ctx_->batch_rows && emitted_ < k_) {
      GHOSTDB_ASSIGN_OR_RETURN(const uint8_t* row, sorter_->Next());
      if (row == nullptr) break;
      AppendSpillRow(&out, offsets_, row);
      emitted_ += 1;
    }
    if (out.rows == 0 || emitted_ >= k_) done_ = true;
  } else {
    while (out.rows < ctx_->batch_rows && emit_pos_ < order_.size()) {
      AppendSpillRow(&out, offsets_, Slot(order_[emit_pos_]));
      emit_pos_ += 1;
    }
    if (emit_pos_ >= order_.size()) done_ = true;
  }
  return out;
}

Status TopKSortOp::Close() {
  ctx_->metrics->topk_short_circuits += short_circuits_;
  if (sorter_ != nullptr) {
    ctx_->metrics->sort_spill_runs += sorter_->stats().runs_written;
    ctx_->metrics->sort_spill_pages += sorter_->stats().pages_written;
    ctx_->metrics->padding_spill_runs += sorter_->stats().padding_runs_written;
    GHOSTDB_RETURN_NOT_OK(sorter_->Close());
  }
  return Operator::Close();
}

// ---------------------------------------------------------------------------
// VolumePadOp
// ---------------------------------------------------------------------------

uint64_t VolumePadOp::PaddedTarget(uint64_t real) const {
  switch (ctx_->config->volume_padding) {
    case VolumePadding::kOff:
      return real;
    case VolumePadding::kQuantize:
      // Buckets are powers of two; an empty result pads into the first
      // bucket, so emptiness is only distinguishable from volumes > 1.
      return NextPowerOfTwo(real);
    case VolumePadding::kWorstCase: {
      // Visible worst case: one result row per anchor-table row. A
      // non-grouped aggregate emits 0 or 1 rows; LIMIT caps the stream
      // above us. All three bounds are visible, so the target — and with
      // it the observed volume — is identical across hidden variants.
      uint64_t bound = ctx_->padding_row_bound;
      if (ctx_->query->HasAggregates() && !ctx_->query->grouped()) {
        bound = 1;
      }
      if (ctx_->query->limit.has_value()) {
        bound = std::min<uint64_t>(bound, *ctx_->query->limit);
      }
      return std::max(bound, real);
    }
  }
  return real;
}

ColumnBatch VolumePadOp::DummyBatch(uint64_t rows) {
  ColumnBatch out = ColumnBatch::Make(layout_, rows);
  for (uint64_t r = 0; r < rows; ++r) {
    // Zero cells, really written: dummy rows cost the same secure-memory
    // work per row as real ones, which is the point of the defense.
    for (size_t c = 0; c < layout_->cols.size(); ++c) out.AppendCell(c);
    out.CommitRow();
  }
  out.padding_rows = rows;
  return out;
}

Result<ColumnBatch> VolumePadOp::Next() {
  if (done_) return ColumnBatch{};
  if (!draining_) {
    GHOSTDB_ASSIGN_OR_RETURN(ColumnBatch batch, child()->Next());
    if (!batch.empty()) {
      if (layout_ == nullptr) layout_ = batch.layout;
      real_rows_ += batch.live() + batch.skipped_rows;
      return batch;
    }
    draining_ = true;
    if (layout_ == nullptr) layout_ = ctx_->value_layout;
    uint64_t target = PaddedTarget(real_rows_);
    dummies_left_ = std::min(target - real_rows_,
                             ctx_->config->padding_dummy_row_cap);
    if (dummies_left_ > 0) {
      // Charge the dummies as if they crossed the padded result link at
      // channel throughput — the simulated-cost overhead the leakage
      // bench reports. Clock time is secure-side (the transcript records
      // no timestamps), so the charge itself leaks nothing.
      auto scope = ctx_->clock().Enter("padding");
      double bps = ctx_->device->channel().throughput();
      uint64_t bytes = dummies_left_ * layout_->row_width;
      ctx_->clock().Advance(static_cast<SimNanos>(
          static_cast<double>(bytes) * 1e9 / bps));
    }
  }
  if (dummies_left_ == 0) {
    done_ = true;
    return ColumnBatch{};
  }
  uint64_t rows = std::min<uint64_t>(dummies_left_, ctx_->batch_rows);
  dummies_left_ -= rows;
  return DummyBatch(rows);
}

// ---------------------------------------------------------------------------
// LimitOp
// ---------------------------------------------------------------------------

Result<ColumnBatch> LimitOp::Next() {
  if (emitted_ >= limit_) return ColumnBatch{};
  GHOSTDB_ASSIGN_OR_RETURN(ColumnBatch batch, child()->Next());
  if (batch.empty()) return batch;
  uint64_t room = limit_ - emitted_;
  if (batch.live() > room) {
    std::vector<uint32_t> keep;
    keep.reserve(static_cast<size_t>(room));
    for (size_t r = 0; r < room; ++r) keep.push_back(batch.row_at(r));
    batch.selection = std::move(keep);
    batch.has_selection = true;
  }
  batch.skipped_rows = 0;  // rows beyond the limit do not exist
  emitted_ += batch.live();
  return batch;
}

}  // namespace ghostdb::exec

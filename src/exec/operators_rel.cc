#include "exec/operators_rel.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "exec/executor.h"

namespace ghostdb::exec {

using catalog::Value;

namespace {

// ---------------------------------------------------------------------------
// Spill-row helpers: a spill row is the concatenated encoded cells of one
// output row plus a trailing u64 arrival sequence (kSpillSeqWidth), which
// makes every comparator total and every sort stable.
// ---------------------------------------------------------------------------

std::vector<uint32_t> ColumnOffsets(const BatchLayout& layout) {
  std::vector<uint32_t> offsets(layout.cols.size());
  uint32_t off = 0;
  for (size_t c = 0; c < layout.cols.size(); ++c) {
    offsets[c] = off;
    off += layout.cols[c].width;
  }
  return offsets;
}

void PackRow(const ColumnBatch& batch, uint32_t physical_row,
             const std::vector<uint32_t>& offsets, uint64_t seq,
             uint8_t* row_buf) {
  for (size_t c = 0; c < batch.layout->cols.size(); ++c) {
    std::memcpy(row_buf + offsets[c], batch.cell(c, physical_row),
                batch.layout->cols[c].width);
  }
  EncodeFixed64(row_buf + batch.layout->row_width, seq);
}

/// ORDER BY keys over the spill-row encoding, ties by arrival.
RowComparator OrderByComparator(const BatchLayout& layout,
                                const std::vector<uint32_t>& offsets,
                                const std::vector<sql::BoundOrderKey>& keys) {
  std::vector<RowComparator::Key> cmp_keys;
  for (const auto& key : keys) {
    const BatchColumn& col = layout.cols[key.select_index];
    cmp_keys.push_back(
        {offsets[key.select_index], col.type, col.width, key.descending});
  }
  return RowComparator::ByKeys(std::move(cmp_keys), layout.row_width);
}

/// Relational-tail row budget for rows of `stride` bytes.
uint64_t BudgetRows(const ExecContext* ctx, uint32_t stride) {
  return std::max<uint64_t>(1, ctx->sort_budget_bytes / stride);
}

/// Appends one spill row's cells (sequence stripped) to a dense batch.
void AppendSpillRow(ColumnBatch* out, const std::vector<uint32_t>& offsets,
                    const uint8_t* row) {
  for (size_t c = 0; c < out->layout->cols.size(); ++c) {
    out->AppendBytes(c, row + offsets[c]);
  }
  out->CommitRow();
}

/// Morsel-parallel canonical-key extraction for the hash phases of
/// Distinct/GroupAggregate: keys of every live row land in index-addressed
/// slots of `keys` (reused across batches), computed across the pool.
/// `key_items` selects the key columns (null = whole row). The fold loop
/// that consumes the keys stays sequential — the spill-trip row, the
/// first-arrival group order, and the FP accumulation order are observable
/// contract, so only this pure per-row compute may fan out.
GHOSTDB_HOST_COMPUTE void ExtractKeys(ExecContext* ctx,
                                      const ColumnBatch& batch,
                                      const std::vector<size_t>* key_items,
                                      std::vector<std::string>* keys) {
  size_t n = batch.live();
  keys->resize(n);
  auto body = [&](uint32_t /*shard*/, uint64_t begin, uint64_t end) {
    for (uint64_t r = begin; r < end; ++r) {
      std::string& key = (*keys)[r];
      key.clear();
      uint32_t row = batch.row_at(r);
      if (key_items == nullptr) {
        batch.RowKey(row, &key);
      } else {
        for (size_t i : *key_items) batch.AppendCellKey(i, row, &key);
      }
    }
  };
  constexpr uint64_t kKeyGrain = 256;
  if (ctx->pool != nullptr && ctx->pool->ShardCount(n, kKeyGrain) > 1) {
    ctx->pool->ParallelShards(n, kKeyGrain, body);
  } else {
    body(0, 0, n);
  }
}

/// ColumnBatch::AppendCellKey over a raw encoded cell (the spill-row path,
/// where no batch exists): identical canonicalization, so keys recovered
/// from spilled partial rows land in the same equivalence classes as the
/// hash phase's.
void AppendCanonicalCellKey(catalog::DataType type, uint32_t width,
                            const uint8_t* src, std::string* out) {
  if (type == catalog::DataType::kDouble && DecodeDouble(src) == 0.0) {
    uint8_t zero[8];
    EncodeDouble(zero, 0.0);
    out->append(reinterpret_cast<const char*>(zero), 8);
    return;
  }
  out->append(reinterpret_cast<const char*>(src), width);
}

/// Row width of the batches a tail operator (Sort/Distinct/TopK) consumes:
/// the (group-)aggregate output width when the plan aggregates below the
/// tail, else the projection's value layout. A pure function of the
/// visible query shape — the strict spill-run padding passes must size
/// their dummy rows from this, never from a live batch, or the padding
/// itself would become hidden-dependent (an empty hidden-filtered stream
/// binds no live layout).
uint32_t TailInputRowWidth(const ExecContext* ctx) {
  const sql::BoundQuery& q = *ctx->query;
  if (!q.HasAggregates()) return ctx->value_layout->row_width;
  uint32_t width = 0;
  for (size_t i = 0; i < q.select.size(); ++i) {
    const BatchColumn& in = ctx->value_layout->cols[i];
    if (q.select[i].agg == AggFunc::kNone) {
      width += in.width;
      continue;
    }
    Aggregator probe(q.select[i].agg, in.type, in.width);
    catalog::DataType out_type = probe.OutputType();
    width += out_type == in.type ? in.width : catalog::FixedWidth(out_type);
  }
  return width;
}

}  // namespace

// ---------------------------------------------------------------------------
// GatherSourceOp
// ---------------------------------------------------------------------------

Result<ColumnBatch> GatherSourceOp::Next() {
  if (done_) return ColumnBatch{};
  const GatherInput& in = *ctx_->gather_rows;
  // An all-empty merge has no bound layout; dummy-free emptiness still
  // needs a layout for the trailing skipped-row batch.
  const BatchLayout* layout =
      in.rows.row_count > 0 ? &in.rows.layout : ctx_->value_layout;
  if (offsets_.empty()) offsets_ = ColumnOffsets(*layout);
  uint64_t n = std::min<uint64_t>(ctx_->batch_rows, in.rows.row_count - pos_);
  ColumnBatch out = ColumnBatch::Make(layout, n);
  for (uint64_t r = 0; r < n; ++r, ++pos_) {
    if (emitted_ >= ctx_->rows_demanded) {
      out.skipped_rows += 1;
      continue;
    }
    const uint8_t* base =
        in.rows.cells.data() + pos_ * static_cast<size_t>(layout->row_width);
    for (size_t c = 0; c < layout->cols.size(); ++c) {
      out.AppendBytes(c, base + offsets_[c]);
    }
    out.CommitRow();
    emitted_ += 1;
  }
  if (pos_ >= in.rows.row_count) {
    done_ = true;
    out.skipped_rows += in.skipped_rows;  // the shards' demand-skipped rows
  }
  if (out.empty()) done_ = true;
  return out;
}

// ---------------------------------------------------------------------------
// AggregateOp
// ---------------------------------------------------------------------------

Status AggregateOp::Open() {
  GHOSTDB_RETURN_NOT_OK(Operator::Open());
  const BatchLayout& in = *ctx_->value_layout;
  for (size_t i = 0; i < ctx_->query->select.size(); ++i) {
    const auto& item = ctx_->query->select[i];
    aggregators_.emplace_back(item.agg, in.cols[i].type, in.cols[i].width);
    catalog::DataType out_type = aggregators_.back().OutputType();
    // MIN/MAX keep the input encoding (strings keep their declared width);
    // COUNT/SUM/AVG emit fixed numerics.
    uint32_t out_width = out_type == in.cols[i].type
                             ? in.cols[i].width
                             : catalog::FixedWidth(out_type);
    out_layout_.Add(out_type, out_width);
  }
  return Status::OK();
}

Result<ColumnBatch> AggregateOp::Next() {
  if (done_) return ColumnBatch{};
  const auto& select = ctx_->query->select;
  if (ctx_->gather_partials != nullptr) {
    // Gather leg of a sharded aggregate: this op was built childless; its
    // input is the shard accumulators, merged exactly (ExactDoubleSum
    // makes double sums independent of the partition).
    for (const PartialAggGroup& pg : *ctx_->gather_partials) {
      for (size_t i = 0; i < aggregators_.size(); ++i) {
        GHOSTDB_RETURN_NOT_OK(aggregators_[i].MergeFrom(pg.aggs[i]));
      }
    }
  } else {
    while (true) {
      GHOSTDB_ASSIGN_OR_RETURN(ColumnBatch batch, child()->Next());
      if (batch.empty()) break;
      for (size_t r = 0; r < batch.live(); ++r) {
        uint32_t row = batch.row_at(r);
        for (size_t i = 0; i < select.size(); ++i) {
          if (select[i].agg == AggFunc::kCountStar) {
            aggregators_[i].AccumulateRow();
          } else {
            GHOSTDB_RETURN_NOT_OK(
                aggregators_[i].AccumulateEncoded(batch.cell(i, row)));
          }
        }
      }
    }
  }
  done_ = true;
  if (ctx_->partials_out != nullptr) {
    // Scatter leg: ship the local accumulators; the empty-input rule below
    // must apply to the *merged* count at gather, never to one shard's.
    PartialAggGroup pg;
    pg.aggs = std::move(aggregators_);
    ctx_->partials_out->push_back(std::move(pg));
    return ColumnBatch{};
  }
  // GhostDB has no NULLs, so SQL's "one row of NULLs" for value aggregates
  // over an empty input becomes an empty result instead: SUM/AVG/MIN/MAX
  // with nothing to fold emit no row (COUNT-only selects keep their zero
  // row). The reference oracle enforces the same rule.
  for (size_t i = 0; i < aggregators_.size(); ++i) {
    if (AggRequiresInput(select[i].agg) && !aggregators_[i].has_input()) {
      return ColumnBatch{};
    }
  }
  ColumnBatch out = ColumnBatch::Make(&out_layout_, 1);
  for (size_t i = 0; i < aggregators_.size(); ++i) {
    GHOSTDB_ASSIGN_OR_RETURN(Value v, aggregators_[i].Finish());
    v.Encode(out.AppendCell(i), out_layout_.cols[i].width);
  }
  out.CommitRow();
  return out;
}

// ---------------------------------------------------------------------------
// GroupAggregateOp
// ---------------------------------------------------------------------------

namespace {

/// Budget estimate for one resident hash group: the canonical map key plus
/// the raw key cells (both key_width bytes), the accumulators, and a fixed
/// container overhead. A pure function of the visible query shape.
size_t GroupBytes(size_t key_width, size_t agg_count) {
  return 2 * key_width + agg_count * sizeof(Aggregator) + 64;
}

}  // namespace

Status GroupAggregateOp::Open() {
  GHOSTDB_RETURN_NOT_OK(Operator::Open());
  in_layout_ = ctx_->value_layout;
  in_offsets_ = ColumnOffsets(*in_layout_);
  const auto& select = ctx_->query->select;
  for (size_t i = 0; i < select.size(); ++i) {
    const BatchColumn& in = in_layout_->cols[i];
    if (select[i].agg == AggFunc::kNone) {
      key_items_.push_back(i);
      out_layout_.Add(in.type, in.width);
    } else {
      agg_items_.push_back(i);
      Aggregator probe(select[i].agg, in.type, in.width);
      catalog::DataType out_type = probe.OutputType();
      uint32_t out_width = out_type == in.type ? in.width
                                               : catalog::FixedWidth(out_type);
      out_layout_.Add(out_type, out_width);
    }
  }
  out_offsets_ = ColumnOffsets(out_layout_);
  // Partial spill-row layout: key cells, then each aggregate's encoded
  // partial state, then the arrival sequence. All widths are pure
  // functions of the visible query shape.
  uint32_t off = 0;
  for (size_t i : key_items_) {
    spill_key_offsets_.push_back(off);
    off += in_layout_->cols[i].width;
  }
  for (size_t i : agg_items_) {
    spill_agg_offsets_.push_back(off);
    off += Aggregator::PartialWidth(select[i].agg, in_layout_->cols[i].type,
                                    in_layout_->cols[i].width);
  }
  spill_seq_offset_ = off;
  spill_stride_ = off + kSpillSeqWidth;
  row_buf_.resize(spill_stride_);
  out_buf_.resize(out_layout_.row_width + kSpillSeqWidth);
  std::vector<RowComparator::Key> keys;
  for (size_t k = 0; k < key_items_.size(); ++k) {
    size_t i = key_items_[k];
    keys.push_back({spill_key_offsets_[k], in_layout_->cols[i].type,
                    in_layout_->cols[i].width, false});
  }
  key_cmp_ = RowComparator::ByKeys(std::move(keys), spill_seq_offset_);
  return Status::OK();
}

std::vector<Aggregator> GroupAggregateOp::MakeAggregators() const {
  std::vector<Aggregator> aggs;
  aggs.reserve(agg_items_.size());
  for (size_t i : agg_items_) {
    aggs.emplace_back(ctx_->query->select[i].agg, in_layout_->cols[i].type,
                      in_layout_->cols[i].width);
  }
  return aggs;
}

Status GroupAggregateOp::AccumulateInto(Group* g, const ColumnBatch& batch,
                                        uint32_t row) {
  for (size_t j = 0; j < agg_items_.size(); ++j) {
    size_t i = agg_items_[j];
    if (ctx_->query->select[i].agg == AggFunc::kCountStar) {
      g->aggs[j].AccumulateRow();
    } else {
      GHOSTDB_RETURN_NOT_OK(g->aggs[j].AccumulateEncoded(batch.cell(i, row)));
    }
  }
  return Status::OK();
}

Status GroupAggregateOp::StartSpill() {
  // Phase A clusters rows of one group adjacently (key cells ascending;
  // CompareEncoded makes ±0.0 doubles one group, matching the canonical
  // hash key) with arrival ties, so each group's partials fold in arrival
  // order and the group's first row (whose raw key cells the output shows,
  // and whose sequence the group keeps) pops first. The sorter folds
  // key-equal rows at run-write time, so each spill run holds at most one
  // partial row per group — spill volume scales with distinct groups, not
  // input rows.
  by_key_ = std::make_unique<ExternalRowSorter>(
      ctx_, spill_stride_, key_cmp_, BudgetRows(ctx_, spill_stride_),
      /*drop_key_duplicates=*/false, "group-spill");
  by_key_->set_fold([this](uint8_t* acc, const uint8_t* row) {
    return FoldPartialRow(acc, row);
  });
  return Status::OK();
}

Status GroupAggregateOp::PackPartialRow(const ColumnBatch& batch,
                                        uint32_t row, uint64_t seq) {
  for (size_t k = 0; k < key_items_.size(); ++k) {
    size_t i = key_items_[k];
    std::memcpy(row_buf_.data() + spill_key_offsets_[k], batch.cell(i, row),
                in_layout_->cols[i].width);
  }
  for (size_t j = 0; j < agg_items_.size(); ++j) {
    size_t i = agg_items_[j];
    Aggregator a(ctx_->query->select[i].agg, in_layout_->cols[i].type,
                 in_layout_->cols[i].width);
    if (ctx_->query->select[i].agg == AggFunc::kCountStar) {
      a.AccumulateRow();
    } else {
      GHOSTDB_RETURN_NOT_OK(a.AccumulateEncoded(batch.cell(i, row)));
    }
    a.EncodePartial(row_buf_.data() + spill_agg_offsets_[j]);
  }
  EncodeFixed64(row_buf_.data() + spill_seq_offset_, seq);
  return Status::OK();
}

Status GroupAggregateOp::FoldPartialRow(uint8_t* acc, const uint8_t* row) {
  for (size_t j = 0; j < agg_items_.size(); ++j) {
    size_t i = agg_items_[j];
    Aggregator a(ctx_->query->select[i].agg, in_layout_->cols[i].type,
                 in_layout_->cols[i].width);
    GHOSTDB_RETURN_NOT_OK(a.AccumulatePartial(acc + spill_agg_offsets_[j]));
    GHOSTDB_RETURN_NOT_OK(a.AccumulatePartial(row + spill_agg_offsets_[j]));
    a.EncodePartial(acc + spill_agg_offsets_[j]);
  }
  return Status::OK();
}

Status GroupAggregateOp::FlushSpillGroup(const uint8_t* partial) {
  size_t key_idx = 0, agg_idx = 0;
  for (size_t i = 0; i < out_layout_.cols.size(); ++i) {
    if (ctx_->query->select[i].agg == AggFunc::kNone) {
      std::memcpy(out_buf_.data() + out_offsets_[i],
                  partial + spill_key_offsets_[key_idx],
                  in_layout_->cols[i].width);
      key_idx += 1;
    } else {
      size_t j = agg_idx++;
      size_t si = agg_items_[j];
      Aggregator a(ctx_->query->select[si].agg, in_layout_->cols[si].type,
                   in_layout_->cols[si].width);
      GHOSTDB_RETURN_NOT_OK(
          a.AccumulatePartial(partial + spill_agg_offsets_[j]));
      GHOSTDB_ASSIGN_OR_RETURN(Value v, a.Finish());
      v.Encode(out_buf_.data() + out_offsets_[i], out_layout_.cols[i].width);
    }
  }
  // Phase B restores first-arrival order over the folded groups.
  EncodeFixed64(out_buf_.data() + out_layout_.row_width,
                DecodeFixed64(partial + spill_seq_offset_));
  return by_arrival_->Add(out_buf_.data());
}

Status GroupAggregateOp::FinishSpill() {
  GHOSTDB_RETURN_NOT_OK(by_key_->Finish());
  uint32_t out_stride = out_layout_.row_width + kSpillSeqWidth;
  by_arrival_ = std::make_unique<ExternalRowSorter>(
      ctx_, out_stride, RowComparator::ByKeys({}, out_layout_.row_width),
      BudgetRows(ctx_, out_stride), /*drop_key_duplicates=*/false,
      "group-arrival");
  // Cross-run duplicates emerge key-adjacent (each run was folded at
  // write time, so at most one partial per group per run remains).
  std::vector<uint8_t> acc;  // current group's folded partial row
  while (true) {
    GHOSTDB_ASSIGN_OR_RETURN(const uint8_t* row, by_key_->Next());
    if (row == nullptr) break;
    if (!acc.empty() && key_cmp_.CompareKeys(row, acc.data()) == 0) {
      GHOSTDB_RETURN_NOT_OK(FoldPartialRow(acc.data(), row));
      continue;
    }
    if (!acc.empty()) GHOSTDB_RETURN_NOT_OK(FlushSpillGroup(acc.data()));
    acc.assign(row, row + spill_stride_);
  }
  if (!acc.empty()) GHOSTDB_RETURN_NOT_OK(FlushSpillGroup(acc.data()));
  ctx_->metrics->sort_spill_runs += by_key_->stats().runs_written;
  ctx_->metrics->sort_spill_pages += by_key_->stats().pages_written;
  ctx_->metrics->padding_spill_runs += by_key_->stats().padding_runs_written;
  GHOSTDB_RETURN_NOT_OK(by_key_->Close());  // phase A flash freed here
  by_key_.reset();
  return by_arrival_->Finish();
}

Status GroupAggregateOp::FinishSpillPartials() {
  GHOSTDB_RETURN_NOT_OK(by_key_->Finish());
  std::vector<uint8_t> acc;  // current group's folded partial row
  auto flush = [&]() -> Status {
    if (acc.empty()) return Status::OK();
    PartialAggGroup pg;
    pg.first_seq = DecodeFixed64(acc.data() + spill_seq_offset_);
    pg.aggs = MakeAggregators();
    for (size_t j = 0; j < agg_items_.size(); ++j) {
      GHOSTDB_RETURN_NOT_OK(
          pg.aggs[j].AccumulatePartial(acc.data() + spill_agg_offsets_[j]));
    }
    for (size_t k = 0; k < key_items_.size(); ++k) {
      size_t i = key_items_[k];
      const uint8_t* src = acc.data() + spill_key_offsets_[k];
      pg.key_cells.insert(pg.key_cells.end(), src,
                          src + in_layout_->cols[i].width);
      AppendCanonicalCellKey(in_layout_->cols[i].type,
                             in_layout_->cols[i].width, src, &pg.key);
    }
    ctx_->partials_out->push_back(std::move(pg));
    return Status::OK();
  };
  while (true) {
    GHOSTDB_ASSIGN_OR_RETURN(const uint8_t* row, by_key_->Next());
    if (row == nullptr) break;
    if (!acc.empty() && key_cmp_.CompareKeys(row, acc.data()) == 0) {
      GHOSTDB_RETURN_NOT_OK(FoldPartialRow(acc.data(), row));
      continue;
    }
    GHOSTDB_RETURN_NOT_OK(flush());
    acc.assign(row, row + spill_stride_);
  }
  GHOSTDB_RETURN_NOT_OK(flush());
  ctx_->metrics->sort_spill_runs += by_key_->stats().runs_written;
  ctx_->metrics->sort_spill_pages += by_key_->stats().pages_written;
  ctx_->metrics->padding_spill_runs += by_key_->stats().padding_runs_written;
  GHOSTDB_RETURN_NOT_OK(by_key_->Close());
  by_key_.reset();
  return Status::OK();
}

Status GroupAggregateOp::DumpPartials() {
  // Hash groups first: recover each group's canonical key from the index
  // (groups_ order is first arrival, but the combiner re-orders by
  // first_seq anyway).
  std::vector<const std::string*> keys(groups_.size(), nullptr);
  for (const auto& [key, idx] : index_) keys[idx] = &key;
  for (size_t gi = 0; gi < groups_.size(); ++gi) {
    Group& g = groups_[gi];
    PartialAggGroup pg;
    if (keys[gi] != nullptr) pg.key = *keys[gi];
    pg.key_cells = std::move(g.key_cells);
    pg.aggs = std::move(g.aggs);
    pg.first_seq = g.first_seq;
    ctx_->partials_out->push_back(std::move(pg));
  }
  groups_.clear();
  index_.clear();
  if (spilling_) GHOSTDB_RETURN_NOT_OK(FinishSpillPartials());
  return Status::OK();
}

Result<ColumnBatch> GroupAggregateOp::Emit() {
  ColumnBatch out = ColumnBatch::Make(
      &out_layout_, std::min<uint64_t>(ctx_->batch_rows, 256));
  while (out.rows < ctx_->batch_rows) {
    if (emit_group_ < groups_.size()) {
      Group& g = groups_[emit_group_++];
      size_t key_off = 0, agg_idx = 0;
      for (size_t i = 0; i < out_layout_.cols.size(); ++i) {
        if (ctx_->query->select[i].agg == AggFunc::kNone) {
          out.AppendBytes(i, g.key_cells.data() + key_off);
          key_off += in_layout_->cols[i].width;
        } else {
          GHOSTDB_ASSIGN_OR_RETURN(Value v, g.aggs[agg_idx++].Finish());
          v.Encode(out.AppendCell(i), out_layout_.cols[i].width);
        }
      }
      out.CommitRow();
      continue;
    }
    if (by_arrival_ == nullptr) break;
    GHOSTDB_ASSIGN_OR_RETURN(const uint8_t* row, by_arrival_->Next());
    if (row == nullptr) break;
    for (size_t c = 0; c < out_layout_.cols.size(); ++c) {
      out.AppendBytes(c, row + out_offsets_[c]);
    }
    out.CommitRow();
  }
  if (out.rows == 0) done_ = true;
  return out;
}

Result<ColumnBatch> GroupAggregateOp::Next() {
  if (done_) return ColumnBatch{};
  if (emitting_) return Emit();
  if (ctx_->gather_partials != nullptr) {
    // Gather leg of a sharded fleet: this op was built childless; seed the
    // group table from the combined shard partials, already merged by key
    // and ordered by first global arrival. Budget bookkeeping is skipped —
    // the combined set is exactly the single-device group set, whose
    // emission the budget already sized.
    groups_.reserve(ctx_->gather_partials->size());
    for (const PartialAggGroup& pg : *ctx_->gather_partials) {
      Group g;
      g.key_cells = pg.key_cells;
      g.aggs = pg.aggs;
      g.first_seq = pg.first_seq;
      groups_.push_back(std::move(g));
    }
    emitting_ = true;
    return Emit();
  }
  while (true) {
    GHOSTDB_ASSIGN_OR_RETURN(ColumnBatch batch, child()->Next());
    if (batch.empty()) break;
    // Keys precomputed morsel-parallel; the fold below is sequential so
    // the budget trips at the exact same row for every thread count.
    ExtractKeys(ctx_, batch, &key_items_, &key_scratch_);
    for (size_t r = 0; r < batch.live(); ++r) {
      uint32_t row = batch.row_at(r);
      // Scatter runs stamp the global anchor id per row; it replaces the
      // local counter so group first-arrival order merges globally.
      uint64_t seq = !batch.seqs.empty() ? batch.seqs[row] : seq_++;
      const std::string& key = key_scratch_[r];
      // Known groups — frozen or not — keep folding in place: no new
      // memory either way.
      auto it = index_.find(std::string_view(key));
      if (it != index_.end()) {
        GHOSTDB_RETURN_NOT_OK(
            AccumulateInto(&groups_[it->second], batch, row));
        continue;
      }
      if (!spilling_) {
        size_t group_bytes = GroupBytes(key.size(), agg_items_.size());
        if (table_bytes_ + group_bytes > ctx_->sort_budget_bytes) {
          if (!ctx_->config->spill_enabled) {
            return Status::ResourceExhausted(
                "group table exceeds the relational-tail budget (" +
                std::to_string(ctx_->sort_budget_bytes) +
                " bytes) and spilling is disabled");
          }
          GHOSTDB_RETURN_NOT_OK(StartSpill());
          spilling_ = true;
        } else {
          Group g;
          g.key_cells.reserve(key.size());
          for (size_t i : key_items_) {
            const uint8_t* src = batch.cell(i, row);
            g.key_cells.insert(g.key_cells.end(), src,
                               src + in_layout_->cols[i].width);
          }
          g.aggs = MakeAggregators();
          g.first_seq = seq;
          GHOSTDB_RETURN_NOT_OK(AccumulateInto(&g, batch, row));
          index_.emplace(key, groups_.size());
          groups_.push_back(std::move(g));
          table_bytes_ += group_bytes;
          continue;
        }
      }
      // A new group past the budget: reroute the row through sort-based
      // grouping as a single-row partial.
      GHOSTDB_RETURN_NOT_OK(PackPartialRow(batch, row, seq));
      GHOSTDB_RETURN_NOT_OK(by_key_->Add(row_buf_.data()));
    }
  }
  if (ctx_->partials_out != nullptr) {
    // Scatter leg: ship the local groups instead of rendering rows.
    GHOSTDB_RETURN_NOT_OK(DumpPartials());
    done_ = true;
    return ColumnBatch{};
  }
  if (spilling_) GHOSTDB_RETURN_NOT_OK(FinishSpill());
  emitting_ = true;
  return Emit();
}

Status GroupAggregateOp::Close() {
  // by_key_ outlives FinishSpill only when the stream was abandoned early;
  // fold whatever spill work actually happened either way. A failing step
  // must not strand the other phase's runs or the children's resources, so
  // the first error is deferred rather than returned.
  Status first;
  auto keep = [&first](Status s) {
    if (first.ok() && !s.ok()) first = std::move(s);
  };
  for (auto* sorter : {by_key_.get(), by_arrival_.get()}) {
    if (sorter == nullptr) continue;
    ctx_->metrics->sort_spill_runs += sorter->stats().runs_written;
    ctx_->metrics->sort_spill_pages += sorter->stats().pages_written;
    ctx_->metrics->padding_spill_runs += sorter->stats().padding_runs_written;
    keep(sorter->Close());
  }
  // Strict spill-run padding: whether this operator spills depends on the
  // hidden-filtered group count, so a never-spilled run must still write
  // both phases' padded dummy-run signatures (a scatter leg skips phase B
  // for every variant — a visible, structural property — so only phase A
  // pads there).
  if (first.ok() && !spilling_ && ctx_->config->pad_spill_runs &&
      spill_stride_ != 0) {
    keep(PadUnspilledSorter(ctx_, spill_stride_, "group-spill"));
    if (first.ok() && ctx_->partials_out == nullptr) {
      keep(PadUnspilledSorter(
          ctx_, out_layout_.row_width + kSpillSeqWidth, "group-arrival"));
    }
  }
  keep(Operator::Close());
  return first;
}

// ---------------------------------------------------------------------------
// DistinctOp
// ---------------------------------------------------------------------------

void DistinctOp::BindLayout(const ColumnBatch& batch) {
  layout_ = batch.layout;
  offsets_ = ColumnOffsets(*layout_);
  row_buf_.resize(layout_->row_width + kSpillSeqWidth);
}

Status DistinctOp::StartSpill() {
  // Phase A orders by every output column ascending (any total order over
  // the row value works — it only has to cluster duplicates), ties by
  // arrival so the earliest occurrence of each value pops first.
  uint32_t stride = layout_->row_width + kSpillSeqWidth;
  std::vector<RowComparator::Key> keys;
  for (size_t c = 0; c < layout_->cols.size(); ++c) {
    keys.push_back(
        {offsets_[c], layout_->cols[c].type, layout_->cols[c].width, false});
  }
  by_value_ = std::make_unique<ExternalRowSorter>(
      ctx_, stride, RowComparator::ByKeys(std::move(keys), layout_->row_width),
      BudgetRows(ctx_, stride), /*drop_key_duplicates=*/true,
      "distinct-spill");
  return Status::OK();
}

Status DistinctOp::SpillRow(const ColumnBatch& batch, uint32_t row,
                            const std::string& key) {
  uint64_t seq = seq_++;
  // Keys emitted by the hash phase stay authoritative: anything already in
  // the frozen set is a duplicate of a row that already left the operator.
  if (seen_.find(std::string_view(key)) != seen_.end()) return Status::OK();
  PackRow(batch, row, offsets_, seq, row_buf_.data());
  return by_value_->Add(row_buf_.data());
}

Status DistinctOp::FinishSpill() {
  GHOSTDB_RETURN_NOT_OK(by_value_->Finish());
  // Phase B restores arrival order over the surviving (unique) rows, so
  // the output is exactly the hash path's: first occurrences, in order.
  uint32_t stride = layout_->row_width + kSpillSeqWidth;
  by_arrival_ = std::make_unique<ExternalRowSorter>(
      ctx_, stride, RowComparator::ByKeys({}, layout_->row_width),
      BudgetRows(ctx_, stride), /*drop_key_duplicates=*/false,
      "distinct-arrival");
  while (true) {
    GHOSTDB_ASSIGN_OR_RETURN(const uint8_t* row, by_value_->Next());
    if (row == nullptr) break;
    GHOSTDB_RETURN_NOT_OK(by_arrival_->Add(row));
  }
  ctx_->metrics->sort_spill_runs += by_value_->stats().runs_written;
  ctx_->metrics->sort_spill_pages += by_value_->stats().pages_written;
  ctx_->metrics->padding_spill_runs += by_value_->stats().padding_runs_written;
  GHOSTDB_RETURN_NOT_OK(by_value_->Close());  // phase A flash freed here
  by_value_.reset();
  return by_arrival_->Finish();
}

Result<ColumnBatch> DistinctOp::EmitSpilled() {
  ColumnBatch out = ColumnBatch::Make(
      layout_, std::min<uint64_t>(ctx_->batch_rows, 256));
  while (out.rows < ctx_->batch_rows) {
    GHOSTDB_ASSIGN_OR_RETURN(const uint8_t* row, by_arrival_->Next());
    if (row == nullptr) break;
    AppendSpillRow(&out, offsets_, row);
  }
  return out;  // empty batch = end of stream
}

Result<ColumnBatch> DistinctOp::Next() {
  if (emitting_) return EmitSpilled();
  // Streaming hash phase: per child batch, keep the live rows whose encoded
  // bytes are new, as a selection over the same batch (RowKey keeps byte
  // equality aligned with value equality). Loop past all-duplicate batches
  // — an empty batch would end the stream.
  while (!child_done_) {
    GHOSTDB_ASSIGN_OR_RETURN(ColumnBatch batch, child()->Next());
    if (batch.empty()) {
      child_done_ = true;
      break;
    }
    if (layout_ == nullptr) BindLayout(batch);
    // Keys precomputed morsel-parallel; the sequential pass below keeps
    // the budget trip and output order identical for every thread count.
    ExtractKeys(ctx_, batch, nullptr, &key_scratch_);
    std::vector<uint32_t> keep;
    for (size_t r = 0; r < batch.live(); ++r) {
      uint32_t row = batch.row_at(r);
      const std::string& key = key_scratch_[r];
      if (spilling_) {
        GHOSTDB_RETURN_NOT_OK(SpillRow(batch, row, key));
        continue;
      }
      if (seen_.find(std::string_view(key)) != seen_.end()) {
        seq_ += 1;
        continue;
      }
      if (seen_bytes_ + key.size() > ctx_->sort_budget_bytes) {
        if (!ctx_->config->spill_enabled) {
          return Status::ResourceExhausted(
              "distinct set exceeds the relational-tail budget (" +
              std::to_string(ctx_->sort_budget_bytes) +
              " bytes) and spilling is disabled");
        }
        GHOSTDB_RETURN_NOT_OK(StartSpill());
        spilling_ = true;
        GHOSTDB_RETURN_NOT_OK(SpillRow(batch, row, key));
        continue;
      }
      seen_.insert(key);  // only genuinely new keys allocate
      seen_bytes_ += key.size();
      keep.push_back(row);
      seq_ += 1;
    }
    batch.skipped_rows = 0;
    if (!keep.empty()) {
      batch.selection = std::move(keep);
      batch.has_selection = true;
      return batch;
    }
  }
  if (!spilling_) return ColumnBatch{};
  GHOSTDB_RETURN_NOT_OK(FinishSpill());
  emitting_ = true;
  return EmitSpilled();
}

Status DistinctOp::Close() {
  // by_value_ outlives FinishSpill only when the stream was abandoned
  // early; fold whatever spill work actually happened either way. Defer
  // the first error so a failing phase cannot strand the other phase's
  // runs or skip the children's Close.
  Status first;
  auto keep = [&first](Status s) {
    if (first.ok() && !s.ok()) first = std::move(s);
  };
  for (auto* sorter : {by_value_.get(), by_arrival_.get()}) {
    if (sorter == nullptr) continue;
    ctx_->metrics->sort_spill_runs += sorter->stats().runs_written;
    ctx_->metrics->sort_spill_pages += sorter->stats().pages_written;
    ctx_->metrics->padding_spill_runs += sorter->stats().padding_runs_written;
    keep(sorter->Close());
  }
  // Strict spill-run padding: the distinct set tripping the budget is
  // hidden-dependent, so a run that never spilled still writes both
  // phases' padded dummy-run signatures.
  if (first.ok() && !spilling_ && ctx_->config->pad_spill_runs) {
    uint32_t stride = TailInputRowWidth(ctx_) + kSpillSeqWidth;
    keep(PadUnspilledSorter(ctx_, stride, "distinct-spill"));
    if (first.ok()) {
      keep(PadUnspilledSorter(ctx_, stride, "distinct-arrival"));
    }
  }
  keep(Operator::Close());
  return first;
}

// ---------------------------------------------------------------------------
// SortOp
// ---------------------------------------------------------------------------

Status SortOp::Gather() {
  while (true) {
    GHOSTDB_ASSIGN_OR_RETURN(ColumnBatch batch, child()->Next());
    if (batch.empty()) break;
    if (layout_ == nullptr) {
      layout_ = batch.layout;
      offsets_ = ColumnOffsets(*layout_);
      uint32_t stride = layout_->row_width + kSpillSeqWidth;
      row_buf_.resize(stride);
      sorter_ = std::make_unique<ExternalRowSorter>(
          ctx_, stride,
          OrderByComparator(*layout_, offsets_, ctx_->query->order_by),
          BudgetRows(ctx_, stride), /*drop_key_duplicates=*/false,
          "sort-spill");
    }
    for (size_t r = 0; r < batch.live(); ++r) {
      PackRow(batch, batch.row_at(r), offsets_, seq_++, row_buf_.data());
      GHOSTDB_RETURN_NOT_OK(sorter_->Add(row_buf_.data()));
    }
  }
  if (sorter_ != nullptr) GHOSTDB_RETURN_NOT_OK(sorter_->Finish());
  return Status::OK();
}

Result<ColumnBatch> SortOp::Next() {
  if (done_) return ColumnBatch{};
  if (!gathered_) {
    GHOSTDB_RETURN_NOT_OK(Gather());
    gathered_ = true;
  }
  if (layout_ == nullptr) {  // empty input stream
    done_ = true;
    return ColumnBatch{};
  }
  ColumnBatch out = ColumnBatch::Make(
      layout_, std::min<uint64_t>(ctx_->batch_rows, 256));
  while (out.rows < ctx_->batch_rows) {
    GHOSTDB_ASSIGN_OR_RETURN(const uint8_t* row, sorter_->Next());
    if (row == nullptr) {
      done_ = true;
      break;
    }
    AppendSpillRow(&out, offsets_, row);
  }
  return out;
}

Status SortOp::Close() {
  Status first;
  if (sorter_ != nullptr) {
    ctx_->metrics->sort_spill_runs += sorter_->stats().runs_written;
    ctx_->metrics->sort_spill_pages += sorter_->stats().pages_written;
    ctx_->metrics->padding_spill_runs += sorter_->stats().padding_runs_written;
    first = sorter_->Close();
  } else if (ctx_->config->pad_spill_runs) {
    // Strict spill-run padding: an empty (hidden-filtered) input never
    // instantiated the sorter; write the padded dummy-run signature a real
    // sorter over zero rows would have.
    first = PadUnspilledSorter(
        ctx_, TailInputRowWidth(ctx_) + kSpillSeqWidth, "sort-spill");
  }
  // Children close even when the sorter's teardown failed.
  Status children = Operator::Close();
  return first.ok() ? children : first;
}

// ---------------------------------------------------------------------------
// TopKSortOp
// ---------------------------------------------------------------------------

Status TopKSortOp::Offer(const uint8_t* row) {
  auto heap_less = [this](uint32_t a, uint32_t b) {
    return cmp_.Compare(Slot(a), Slot(b)) < 0;
  };
  if (heap_.size() < k_) {
    uint32_t slot = static_cast<uint32_t>(heap_.size());
    arena_.insert(arena_.end(), row, row + stride_);
    heap_.push_back(slot);
    std::push_heap(heap_.begin(), heap_.end(), heap_less);
    return Status::OK();
  }
  // Heap top = the worst kept row. A later arrival with equal keys
  // compares greater (arrival tie-break), so it is rejected — exactly the
  // stable Sort -> Limit semantics.
  if (cmp_.Compare(row, Slot(heap_.front())) >= 0) {
    short_circuits_ += 1;
    return Status::OK();
  }
  std::pop_heap(heap_.begin(), heap_.end(), heap_less);
  uint32_t slot = heap_.back();
  std::copy(row, row + stride_,
            arena_.begin() + static_cast<size_t>(slot) * stride_);
  std::push_heap(heap_.begin(), heap_.end(), heap_less);
  return Status::OK();
}

Status TopKSortOp::Gather() {
  while (true) {
    GHOSTDB_ASSIGN_OR_RETURN(ColumnBatch batch, child()->Next());
    if (batch.empty()) break;
    if (layout_ == nullptr) {
      layout_ = batch.layout;
      offsets_ = ColumnOffsets(*layout_);
      stride_ = layout_->row_width + kSpillSeqWidth;
      row_buf_.resize(stride_);
      cmp_ = OrderByComparator(*layout_, offsets_, ctx_->query->order_by);
      if (k_ > BudgetRows(ctx_, stride_)) {
        // The heap itself would exceed the budget: degrade to the spilling
        // sort, truncated at k rows on the way out.
        sorter_ = std::make_unique<ExternalRowSorter>(
            ctx_, stride_, cmp_, BudgetRows(ctx_, stride_),
            /*drop_key_duplicates=*/false, "topk-spill");
      } else {
        arena_.reserve(static_cast<size_t>(k_) * stride_);
      }
    }
    for (size_t r = 0; r < batch.live(); ++r) {
      PackRow(batch, batch.row_at(r), offsets_, seq_++, row_buf_.data());
      if (sorter_ != nullptr) {
        GHOSTDB_RETURN_NOT_OK(sorter_->Add(row_buf_.data()));
      } else {
        GHOSTDB_RETURN_NOT_OK(Offer(row_buf_.data()));
      }
    }
  }
  if (sorter_ != nullptr) {
    GHOSTDB_RETURN_NOT_OK(sorter_->Finish());
  } else {
    order_ = heap_;
    std::sort(order_.begin(), order_.end(), [this](uint32_t a, uint32_t b) {
      return cmp_.Compare(Slot(a), Slot(b)) < 0;
    });
  }
  return Status::OK();
}

Result<ColumnBatch> TopKSortOp::Next() {
  if (done_) return ColumnBatch{};
  if (k_ == 0) {  // LIMIT 0 never pulls the child, like LimitOp
    done_ = true;
    return ColumnBatch{};
  }
  if (!gathered_) {
    GHOSTDB_RETURN_NOT_OK(Gather());
    gathered_ = true;
  }
  if (layout_ == nullptr) {
    done_ = true;
    return ColumnBatch{};
  }
  ColumnBatch out = ColumnBatch::Make(
      layout_, std::min<uint64_t>(std::min<uint64_t>(ctx_->batch_rows, k_),
                                  256));
  if (sorter_ != nullptr) {
    while (out.rows < ctx_->batch_rows && emitted_ < k_) {
      GHOSTDB_ASSIGN_OR_RETURN(const uint8_t* row, sorter_->Next());
      if (row == nullptr) break;
      AppendSpillRow(&out, offsets_, row);
      emitted_ += 1;
    }
    if (out.rows == 0 || emitted_ >= k_) done_ = true;
  } else {
    while (out.rows < ctx_->batch_rows && emit_pos_ < order_.size()) {
      AppendSpillRow(&out, offsets_, Slot(order_[emit_pos_]));
      emit_pos_ += 1;
    }
    if (emit_pos_ >= order_.size()) done_ = true;
  }
  return out;
}

Status TopKSortOp::Close() {
  ctx_->metrics->topk_short_circuits += short_circuits_;
  Status first;
  if (sorter_ != nullptr) {
    ctx_->metrics->sort_spill_runs += sorter_->stats().runs_written;
    ctx_->metrics->sort_spill_pages += sorter_->stats().pages_written;
    ctx_->metrics->padding_spill_runs += sorter_->stats().padding_runs_written;
    first = sorter_->Close();
  } else if (ctx_->config->pad_spill_runs && k_ > 0) {
    // Strict spill-run padding for the visible spilling-sort fallback
    // (k past the budget — both visible): an empty input never
    // instantiated the sorter. The in-budget heap mode uses no sorter for
    // any variant, so it pads nothing.
    uint32_t stride = TailInputRowWidth(ctx_) + kSpillSeqWidth;
    if (k_ > BudgetRows(ctx_, stride)) {
      first = PadUnspilledSorter(ctx_, stride, "topk-spill");
    }
  }
  Status children = Operator::Close();
  return first.ok() ? children : first;
}

// ---------------------------------------------------------------------------
// VolumePadOp
// ---------------------------------------------------------------------------

uint64_t VolumePadOp::PaddedTarget(uint64_t real) const {
  switch (ctx_->config->volume_padding) {
    case VolumePadding::kOff:
      return real;
    case VolumePadding::kQuantize:
      // Buckets are powers of two; an empty result pads into the first
      // bucket, so emptiness is only distinguishable from volumes > 1.
      return NextPowerOfTwo(real);
    case VolumePadding::kWorstCase: {
      // Visible worst case: one result row per anchor-table row. A
      // non-grouped aggregate emits 0 or 1 rows; LIMIT caps the stream
      // above us. All three bounds are visible, so the target — and with
      // it the observed volume — is identical across hidden variants.
      uint64_t bound = ctx_->padding_row_bound;
      if (ctx_->query->HasAggregates() && !ctx_->query->grouped()) {
        bound = 1;
      }
      if (ctx_->query->limit.has_value()) {
        bound = std::min<uint64_t>(bound, *ctx_->query->limit);
      }
      return std::max(bound, real);
    }
  }
  return real;
}

ColumnBatch VolumePadOp::DummyBatch(uint64_t rows) {
  ColumnBatch out = ColumnBatch::Make(layout_, rows);
  for (uint64_t r = 0; r < rows; ++r) {
    // Zero cells, really written: dummy rows cost the same secure-memory
    // work per row as real ones, which is the point of the defense.
    for (size_t c = 0; c < layout_->cols.size(); ++c) out.AppendCell(c);
    out.CommitRow();
  }
  out.padding_rows = rows;
  return out;
}

Result<ColumnBatch> VolumePadOp::Next() {
  if (done_) return ColumnBatch{};
  if (!draining_) {
    GHOSTDB_ASSIGN_OR_RETURN(ColumnBatch batch, child()->Next());
    if (!batch.empty()) {
      if (layout_ == nullptr) layout_ = batch.layout;
      real_rows_ += batch.live() + batch.skipped_rows;
      return batch;
    }
    draining_ = true;
    if (layout_ == nullptr) layout_ = ctx_->value_layout;
    uint64_t target = PaddedTarget(real_rows_);
    dummies_left_ = std::min(target - real_rows_,
                             ctx_->config->padding_dummy_row_cap);
    if (dummies_left_ > 0) {
      // Charge the dummies as if they crossed the padded result link at
      // channel throughput — the simulated-cost overhead the leakage
      // bench reports. Clock time is secure-side (the transcript records
      // no timestamps), so the charge itself leaks nothing.
      auto scope = ctx_->clock().Enter("padding");
      double bps = ctx_->device->channel().throughput();
      uint64_t bytes = dummies_left_ * layout_->row_width;
      ctx_->clock().Advance(static_cast<SimNanos>(
          static_cast<double>(bytes) * 1e9 / bps));
    }
  }
  if (dummies_left_ == 0) {
    done_ = true;
    return ColumnBatch{};
  }
  uint64_t rows = std::min<uint64_t>(dummies_left_, ctx_->batch_rows);
  dummies_left_ -= rows;
  return DummyBatch(rows);
}

// ---------------------------------------------------------------------------
// LimitOp
// ---------------------------------------------------------------------------

Result<ColumnBatch> LimitOp::Next() {
  if (emitted_ >= limit_) return ColumnBatch{};
  GHOSTDB_ASSIGN_OR_RETURN(ColumnBatch batch, child()->Next());
  if (batch.empty()) return batch;
  uint64_t room = limit_ - emitted_;
  if (batch.live() > room) {
    std::vector<uint32_t> keep;
    keep.reserve(static_cast<size_t>(room));
    for (size_t r = 0; r < room; ++r) keep.push_back(batch.row_at(r));
    batch.selection = std::move(keep);
    batch.has_selection = true;
  }
  batch.skipped_rows = 0;  // rows beyond the limit do not exist
  emitted_ += batch.live();
  return batch;
}

}  // namespace ghostdb::exec

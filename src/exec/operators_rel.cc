#include "exec/operators_rel.h"

#include <algorithm>

namespace ghostdb::exec {

using catalog::Value;

// ---------------------------------------------------------------------------
// AggregateOp
// ---------------------------------------------------------------------------

Status AggregateOp::Open() {
  GHOSTDB_RETURN_NOT_OK(Operator::Open());
  for (const auto& item : ctx_->query->select) {
    catalog::DataType input_type =
        item.is_id
            ? catalog::DataType::kInt32
            : ctx_->schema->table(item.table).columns[item.column].type;
    aggregators_.emplace_back(item.agg, input_type);
  }
  return Status::OK();
}

Result<RowBatch> AggregateOp::Next() {
  if (done_) return RowBatch{};
  const auto& select = ctx_->query->select;
  while (true) {
    GHOSTDB_ASSIGN_OR_RETURN(RowBatch batch, child()->Next());
    if (batch.empty()) break;
    for (const auto& row : batch.rows) {
      for (size_t i = 0; i < select.size(); ++i) {
        if (select[i].agg == AggFunc::kCountStar) {
          aggregators_[i].AccumulateRow();
        } else {
          GHOSTDB_RETURN_NOT_OK(aggregators_[i].Accumulate(row[i]));
        }
      }
    }
  }
  std::vector<Value> agg_row;
  agg_row.reserve(aggregators_.size());
  for (auto& a : aggregators_) {
    GHOSTDB_ASSIGN_OR_RETURN(Value v, a.Finish());
    agg_row.push_back(std::move(v));
  }
  done_ = true;
  RowBatch out;
  out.rows.push_back(std::move(agg_row));
  return out;
}

// ---------------------------------------------------------------------------
// DistinctOp
// ---------------------------------------------------------------------------

Result<RowBatch> DistinctOp::Next() {
  RowBatch out;
  while (!child_done_ && out.rows.size() < ctx_->config->batch_size) {
    GHOSTDB_ASSIGN_OR_RETURN(RowBatch batch, child()->Next());
    if (batch.empty()) {
      child_done_ = true;
      break;
    }
    for (auto& row : batch.rows) {
      if (seen_.insert(row).second) {
        out.rows.push_back(std::move(row));
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// SortOp
// ---------------------------------------------------------------------------

Result<RowBatch> SortOp::Next() {
  if (!sorted_) {
    while (true) {
      GHOSTDB_ASSIGN_OR_RETURN(RowBatch batch, child()->Next());
      if (batch.empty()) break;
      for (auto& row : batch.rows) rows_.push_back(std::move(row));
    }
    const auto& keys = ctx_->query->order_by;
    std::stable_sort(rows_.begin(), rows_.end(),
                     [&](const std::vector<Value>& a,
                         const std::vector<Value>& b) {
                       for (const auto& key : keys) {
                         int cmp = a[key.select_index].Compare(
                             b[key.select_index]);
                         if (cmp != 0) {
                           return key.descending ? cmp > 0 : cmp < 0;
                         }
                       }
                       return false;
                     });
    sorted_ = true;
  }
  RowBatch out;
  while (cursor_ < rows_.size() &&
         out.rows.size() < ctx_->config->batch_size) {
    out.rows.push_back(std::move(rows_[cursor_]));
    ++cursor_;
  }
  return out;
}

// ---------------------------------------------------------------------------
// LimitOp
// ---------------------------------------------------------------------------

Result<RowBatch> LimitOp::Next() {
  if (emitted_ >= limit_) return RowBatch{};
  GHOSTDB_ASSIGN_OR_RETURN(RowBatch batch, child()->Next());
  if (batch.empty()) return batch;
  uint64_t room = limit_ - emitted_;
  if (batch.rows.size() > room) {
    batch.rows.resize(static_cast<size_t>(room));
  }
  batch.skipped_rows = 0;  // rows beyond the limit do not exist
  emitted_ += batch.rows.size();
  return batch;
}

}  // namespace ghostdb::exec

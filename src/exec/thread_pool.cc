#include "exec/thread_pool.h"

#include <algorithm>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace ghostdb::exec {

namespace {

void PinToCore(std::thread* thread, uint32_t core) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core, &set);
  // Best-effort: a constrained affinity mask (cgroups, taskset) can refuse
  // the core; the worker then just runs unpinned.
  pthread_setaffinity_np(thread->native_handle(), sizeof(set), &set);
#else
  (void)thread;
  (void)core;
#endif
}

}  // namespace

ThreadPool::ThreadPool(uint32_t width, bool pin_threads)
    : width_(std::max<uint32_t>(1, width)) {
  uint32_t cores = std::max(1u, std::thread::hardware_concurrency());
  threads_.reserve(width_ - 1);
  for (uint32_t i = 0; i + 1 < width_; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
    // Round-robin starting at core 1: core 0 is where the admitted /
    // submitting thread most likely runs.
    if (pin_threads) PinToCore(&threads_.back(), (i + 1) % cores);
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

uint32_t ThreadPool::ShardCount(uint64_t n, uint64_t min_grain) const {
  if (n == 0) return 1;
  uint64_t by_grain = n / std::max<uint64_t>(1, min_grain);
  return static_cast<uint32_t>(
      std::max<uint64_t>(1, std::min<uint64_t>(width_, by_grain)));
}

std::pair<uint64_t, uint64_t> ThreadPool::ShardRange(uint64_t n,
                                                     uint32_t shards,
                                                     uint32_t s) {
  // Balanced contiguous split: the first n % shards shards get one extra.
  uint64_t base = n / shards;
  uint64_t extra = n % shards;
  uint64_t begin = s * base + std::min<uint64_t>(s, extra);
  uint64_t end = begin + base + (s < extra ? 1 : 0);
  return {begin, end};
}

void ThreadPool::ParallelShards(
    uint64_t n, uint64_t min_grain,
    const std::function<void(uint32_t, uint64_t, uint64_t)>& body) {
  uint32_t shards = ShardCount(n, min_grain);
  if (shards <= 1 || threads_.empty()) {
    body(0, 0, n);
    return;
  }
  Region region{&body, n, shards};
  std::unique_lock<std::mutex> lk(mu_);
  regions_.push_back(&region);
  work_cv_.notify_all();
  // The submitter works its own region too, then blocks only for shards
  // still running on workers.
  DrainRegion(&region, lk);
  done_cv_.wait(lk, [&] { return region.done == region.shards; });
}

void ThreadPool::DrainRegion(Region* region, std::unique_lock<std::mutex>& lk) {
  // Lifetime protocol: the Region lives on the submitter's stack and dies
  // as soon as done == shards, so a thread may only dereference `region`
  // while it holds an unfinished claimed shard (which pins done < shards).
  // Entry holds mu_ with at least one unclaimed shard, so the first claim
  // happens before any unlock; afterwards, reporting a shard done and
  // claiming the next happen in one critical section — the moment a thread
  // leaves it without a claim it never touches `region` again.
  uint32_t s = region->next++;
  if (region->next >= region->shards) {
    // Fully claimed: retire from the queue so workers stop seeing it.
    auto it = std::find(regions_.begin(), regions_.end(), region);
    if (it != regions_.end()) regions_.erase(it);
  }
  for (;;) {
    lk.unlock();
    auto [begin, end] = ShardRange(region->n, region->shards, s);
    (*region->body)(s, begin, end);
    lk.lock();
    region->done += 1;
    bool finished_last = region->done == region->shards;
    bool have_next = region->next < region->shards;
    if (have_next) {
      s = region->next++;
      if (region->next >= region->shards) {
        auto it = std::find(regions_.begin(), regions_.end(), region);
        if (it != regions_.end()) regions_.erase(it);
      }
    }
    if (finished_last) done_cv_.notify_all();
    if (!have_next) return;  // lk held; `region` is out of bounds from here
  }
}

void ThreadPool::WorkerLoop(uint32_t /*worker_index*/) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || !regions_.empty(); });
    if (stop_) return;
    // Queue invariant: a listed region always has an unclaimed shard.
    DrainRegion(regions_.front(), lk);
  }
}

}  // namespace ghostdb::exec

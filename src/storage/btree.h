// Bulk-loaded B+-tree with multi-level posting lists: the Climbing Index of
// paper section 3.2.
//
// A climbing index on attribute Ti.a holds, for each distinct key, one
// sorted id-sublist per "level": level 0 is Ti itself, further levels are
// Ti's ancestors up to the root. A selection anywhere in the schema tree
// can thus deliver ids of any ancestor table in a single index traversal —
// no cascading lookups, no unions of per-step results.
//
// Layout on flash (all bulk-built bottom-up from sorted entries):
//  * one postings area per level: the concatenation, in key order, of the
//    per-key sorted sublists (4-byte ids, 512 per page);
//  * leaf pages: fixed-stride entries [key | per-level (start,count)] where
//    start/count locate the sublist inside the level's postings area;
//  * internal pages: [key | child page] separators.
//
// Query-time readers borrow device RAM buffers — one per tree level, as the
// paper prescribes ("CI requires at most one buffer per B+-Tree level") —
// and cache the current page per level, so sorted probe batches touch each
// page once.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "catalog/stats.h"
#include "catalog/value.h"
#include "common/result.h"
#include "common/status.h"
#include "device/guards.h"
#include "flash/flash.h"
#include "storage/page_allocator.h"
#include "storage/run.h"

namespace ghostdb::storage {

/// Locates one sublist inside a level's postings area.
struct PostingRange {
  uint32_t start = 0;  ///< Element offset (ids) into the postings area.
  uint32_t count = 0;
};

/// A finished climbing index.
struct BTreeRef {
  catalog::DataType key_type = catalog::DataType::kInt32;
  uint32_t key_width = 4;
  uint32_t levels = 1;          ///< 1 + number of ancestor levels.
  uint32_t height = 0;          ///< Tree levels including the leaf level.
  uint32_t root_page = 0;
  RunRef leaf_run;              ///< Leaf pages in key order.
  std::vector<RunRef> node_runs;  ///< Internal levels, bottom-up.
  std::vector<RunRef> postings;   ///< One postings area per level.
  uint64_t entry_count = 0;     ///< Distinct keys.
  std::vector<uint64_t> level_id_counts;  ///< Total ids per level.

  /// Total flash pages of the whole structure (for Fig 7 accounting).
  uint64_t total_pages() const;
};

/// \brief Bulk builder; keys must arrive strictly ascending.
class BTreeBuilder {
 public:
  /// `levels` counts the indexed table itself plus each ancestor.
  BTreeBuilder(flash::FlashDevice* device, PageAllocator* allocator,
               catalog::DataType key_type, uint32_t key_width,
               uint32_t levels, std::string tag);
  ~BTreeBuilder();

  /// Adds one distinct key with its per-level sorted id sublists
  /// (`level_ids[0]` = ids of the indexed table, then ancestors nearest
  /// first).
  Status Add(const catalog::Value& key,
             const std::vector<std::vector<catalog::RowId>>& level_ids);

  /// Builds internal levels and returns the finished index.
  Result<BTreeRef> Finish();

 private:
  Status FlushLeaf();

  flash::FlashDevice* device_;
  PageAllocator* allocator_;
  catalog::DataType key_type_;
  uint32_t key_width_;
  uint32_t levels_;
  std::string tag_;
  uint32_t page_size_;
  uint32_t leaf_stride_;
  uint32_t leaf_capacity_;

  std::vector<uint8_t> scratch_;                // one page
  std::vector<std::unique_ptr<RunWriter>> posting_writers_;
  std::vector<std::vector<uint8_t>> posting_buffers_;
  std::unique_ptr<RunWriter> leaf_writer_;
  std::vector<uint8_t> leaf_buffer_;

  std::vector<uint8_t> leaf_page_;              // page under construction
  uint32_t leaf_fill_ = 0;                      // entries in leaf_page_
  std::vector<std::vector<uint8_t>> separators_;  // first key per leaf
  std::vector<uint32_t> posting_cursor_;        // next free elem per level
  uint64_t entry_count_ = 0;
  std::vector<uint64_t> level_id_counts_;
  bool has_last_key_ = false;
  std::vector<uint8_t> last_key_;
};

/// One decoded leaf entry.
struct BTreeEntry {
  catalog::Value key;
  std::vector<PostingRange> ranges;  ///< One per level.
};

/// \brief Query-time reader. Borrows one RAM buffer per tree level and
/// caches the current page of each level, so repeated descents to nearby
/// keys cost no extra I/O (the paper's cost model).
class BTreeReader {
 public:
  /// Acquires `ref.height` buffers from `ram`; fails if RAM is exhausted.
  static Result<std::unique_ptr<BTreeReader>> Open(
      flash::FlashDevice* device, device::RamManager* ram,
      const BTreeRef* ref);

  /// Positions the cursor at the first entry with key >= `key`.
  /// Returns false if no such entry exists.
  Result<bool> SeekLowerBound(const catalog::Value& key);

  /// Positions the cursor at the first entry of the index.
  Result<bool> SeekToFirst();

  /// Entry under the cursor (cursor must be valid).
  Result<BTreeEntry> Current();

  /// Advances the cursor; returns false at the end.
  Result<bool> Next();

  bool cursor_valid() const { return cursor_valid_; }

  /// Pages read by this reader so far (diagnostics).
  uint64_t pages_loaded() const { return pages_loaded_; }

 private:
  BTreeReader(flash::FlashDevice* device, const BTreeRef* ref);

  Status LoadLevelPage(uint32_t level, uint32_t run_page_index);
  // Descends from the root, returns the leaf page index holding the lower
  // bound for `encoded_key` (or the last leaf if the key is past the end).
  Result<uint32_t> DescendToLeaf(const uint8_t* encoded_key);
  int CompareKeyAt(const uint8_t* entry_key, const uint8_t* needle) const;

  flash::FlashDevice* device_;
  const BTreeRef* ref_;
  device::RamGuard buffers_;      // height contiguous buffers
  std::vector<int64_t> loaded_page_;  // per level: run page index or -1
  uint64_t pages_loaded_ = 0;

  // Cursor state: current leaf page index + entry slot.
  bool cursor_valid_ = false;
  uint32_t cursor_leaf_ = 0;
  uint32_t cursor_slot_ = 0;
};

/// \brief Streams the ids of one PostingRange; one RAM buffer (or
/// sub-buffer window), partial page reads — only the bytes inside the range
/// and the window are transferred.
class PostingCursor {
 public:
  /// `window_bytes` = 0 means one full page (the normal mode); smaller
  /// values model the sub-buffer Merge alternative of section 3.4.
  PostingCursor(flash::FlashDevice* device, const RunRef* area,
                PostingRange range, uint8_t* buffer,
                uint32_t window_bytes = 0);

  bool valid() const { return has_head_; }
  catalog::RowId head() const { return head_; }
  Status Prime();
  Status Advance();

 private:
  flash::FlashDevice* device_;
  const RunRef* area_;
  uint8_t* buffer_;
  uint32_t page_size_;
  uint32_t window_;
  uint32_t next_elem_;
  uint32_t remaining_;
  uint32_t window_first_elem_ = 0;  // absolute elem index of window start
  uint32_t window_elems_ = 0;       // elems buffered; 0 = nothing
  catalog::RowId head_ = 0;
  bool has_head_ = false;
};

}  // namespace ghostdb::storage

#include "storage/fixed_table.h"

#include <algorithm>
#include <cstring>

#include "device/guards.h"

namespace ghostdb::storage {

namespace {
constexpr uint32_t kExtentPages = 64;
}

FixedTableBuilder::FixedTableBuilder(flash::FlashDevice* device,
                                     PageAllocator* allocator,
                                     uint8_t* buffer, uint32_t row_width,
                                     std::string tag)
    : device_(device),
      allocator_(allocator),
      buffer_(buffer),
      row_width_(row_width),
      tag_(std::move(tag)),
      page_size_(device->config().page_size),
      rows_per_page_(device->config().page_size / row_width) {}

Status FixedTableBuilder::AppendRow(const uint8_t* row) {
  if (rows_per_page_ == 0) {
    return Status::InvalidArgument("row width exceeds page size");
  }
  std::memcpy(buffer_ + rows_in_page_ * row_width_, row, row_width_);
  rows_in_page_ += 1;
  row_count_ += 1;
  if (rows_in_page_ == rows_per_page_) {
    GHOSTDB_RETURN_NOT_OK(FlushPage());
  }
  return Status::OK();
}

Status FixedTableBuilder::FlushPage() {
  uint32_t have = 0;
  for (auto& e : extents_) have += e.second;
  if (pages_used_ == have) {
    GHOSTDB_ASSIGN_OR_RETURN(
        device::PageGuard extent,
        device::PageGuard::Alloc(allocator_, kExtentPages, tag_));
    // Joins the builder's extent list; Finish() hands it to the table ref
    // (build-time only, so there is no abort path to reclaim on).
    auto [first, count] = extent.Detach();
    if (!extents_.empty() &&
        extents_.back().first + extents_.back().second == first) {
      extents_.back().second += count;
    } else {
      extents_.emplace_back(first, count);
    }
  }
  uint32_t idx = pages_used_;
  uint32_t lpn = 0;
  for (auto& e : extents_) {
    if (idx < e.second) {
      lpn = e.first + idx;
      break;
    }
    idx -= e.second;
  }
  uint32_t fill = rows_in_page_ * row_width_;
  if (fill < page_size_) std::memset(buffer_ + fill, 0, page_size_ - fill);
  GHOSTDB_RETURN_NOT_OK(device_->WritePage(lpn, buffer_));
  pages_used_ += 1;
  rows_in_page_ = 0;
  return Status::OK();
}

Result<FixedTableRef> FixedTableBuilder::Finish() {
  if (finished_) return Status::Internal("FixedTableBuilder finished twice");
  finished_ = true;
  if (rows_in_page_ > 0) {
    GHOSTDB_RETURN_NOT_OK(FlushPage());
  }
  uint32_t have = 0;
  for (auto& e : extents_) have += e.second;
  if (have > pages_used_) {
    uint32_t extra = have - pages_used_;
    auto& last = extents_.back();
    GHOSTDB_RETURN_NOT_OK(
        device::PageGuard::Adopt(allocator_, last.first + last.second - extra,
                                 extra, tag_)
            .Free());
    last.second -= extra;
    if (last.second == 0) extents_.pop_back();
  }
  FixedTableRef ref;
  ref.run.extents = std::move(extents_);
  ref.run.bytes = static_cast<uint64_t>(pages_used_) * page_size_;
  ref.row_width = row_width_;
  ref.rows_per_page = rows_per_page_;
  ref.row_count = row_count_;
  return ref;
}

FixedTableReader::FixedTableReader(flash::FlashDevice* device,
                                   const FixedTableRef& ref, uint8_t* buffer)
    : device_(device), ref_(ref), buffer_(buffer) {}

Status FixedTableReader::ReadRow(catalog::RowId row, uint8_t* dst) {
  if (row >= ref_.row_count) {
    return Status::OutOfRange("row " + std::to_string(row) + " past end (" +
                              std::to_string(ref_.row_count) + " rows)");
  }
  int64_t page = row / ref_.rows_per_page;
  if (page != buffered_page_) {
    GHOSTDB_RETURN_NOT_OK(device_->ReadFullPage(
        ref_.run.PageAt(static_cast<uint32_t>(page)), buffer_));
    buffered_page_ = page;
    pages_touched_ += 1;
  }
  uint32_t slot = row % ref_.rows_per_page;
  std::memcpy(dst, buffer_ + slot * ref_.row_width, ref_.row_width);
  return Status::OK();
}

Result<FixedTableReader::Span> FixedTableReader::RowSpan(catalog::RowId row) {
  if (row >= ref_.row_count) {
    return Status::OutOfRange("row " + std::to_string(row) + " past end (" +
                              std::to_string(ref_.row_count) + " rows)");
  }
  int64_t page = row / ref_.rows_per_page;
  if (page != buffered_page_) {
    GHOSTDB_RETURN_NOT_OK(device_->ReadFullPage(
        ref_.run.PageAt(static_cast<uint32_t>(page)), buffer_));
    buffered_page_ = page;
    pages_touched_ += 1;
  }
  uint32_t slot = row % ref_.rows_per_page;
  uint64_t first_on_page = static_cast<uint64_t>(page) * ref_.rows_per_page;
  uint64_t rows_on_page =
      std::min<uint64_t>(ref_.rows_per_page, ref_.row_count - first_on_page);
  Span span;
  span.data = buffer_ + slot * ref_.row_width;
  span.rows = static_cast<uint32_t>(rows_on_page - slot);
  return span;
}

}  // namespace ghostdb::storage

#include "storage/run.h"

#include <algorithm>
#include <cstring>

#include "common/coding.h"
#include "device/fault_injector.h"
#include "device/guards.h"

namespace ghostdb::storage {

namespace {
// Pages per allocation extent while a run grows.
constexpr uint32_t kExtentPages = 64;
}  // namespace

RunWriter::RunWriter(flash::FlashDevice* device, PageAllocator* allocator,
                     uint8_t* buffer, std::string tag)
    : device_(device),
      allocator_(allocator),
      buffer_(buffer),
      tag_(std::move(tag)),
      page_size_(device->config().page_size) {}

RunWriter::~RunWriter() {
  // Best-effort: Free only fails on out-of-range trims, which cannot happen
  // for extents this writer allocated.
  GHOSTDB_IGNORE_STATUS(Abort(), "destructor cleanup cannot fail usefully");
}

Status RunWriter::Abort() {
  Status status;
  for (const auto& e : extents_) {
    Status s =
        device::PageGuard::Adopt(allocator_, e.first, e.second, tag_).Free();
    if (status.ok() && !s.ok()) status = s;
  }
  extents_.clear();
  pages_used_ = 0;
  fill_ = 0;
  bytes_ = 0;
  return status;
}

Status RunWriter::Append(const uint8_t* data, size_t len) {
  while (len > 0) {
    size_t take = std::min<size_t>(len, page_size_ - fill_);
    std::memcpy(buffer_ + fill_, data, take);
    fill_ += take;
    bytes_ += take;
    data += take;
    len -= take;
    if (fill_ == page_size_) {
      GHOSTDB_RETURN_NOT_OK(FlushPage());
    }
  }
  return Status::OK();
}

Status RunWriter::AppendU32(uint32_t v) {
  uint8_t enc[4];
  EncodeFixed32(enc, v);
  return Append(enc, 4);
}

Status RunWriter::FlushPage() {
  uint32_t have = 0;
  for (auto& e : extents_) have += e.second;
  if (pages_used_ == have) {
    GHOSTDB_ASSIGN_OR_RETURN(
        device::PageGuard extent,
        device::PageGuard::Alloc(allocator_, kExtentPages, tag_));
    // The extent outlives this scope: it joins the writer's extent list,
    // which Abort()/Finish() reclaim or hand to the RunRef.
    auto [first, count] = extent.Detach();
    if (!extents_.empty() &&
        extents_.back().first + extents_.back().second == first) {
      extents_.back().second += count;  // coalesce
    } else {
      extents_.emplace_back(first, count);
    }
  }
  // Locate the logical page for run-relative index pages_used_.
  uint32_t idx = pages_used_;
  uint32_t lpn = 0;
  for (auto& e : extents_) {
    if (idx < e.second) {
      lpn = e.first + idx;
      break;
    }
    idx -= e.second;
  }
  if (fill_ < page_size_) {
    std::memset(buffer_ + fill_, 0, page_size_ - fill_);
  }
  // Torn-run-write site: the run is left mid-write holding allocated
  // extents, exactly the state Abort()/the destructor must reclaim.
  if (device_->fault_injector() != nullptr) {
    GHOSTDB_RETURN_NOT_OK(device_->fault_injector()->CheckSite(
        device::FaultSite::kRunWrite,
        "run page " + std::to_string(pages_used_) + " (tag " + tag_ + ")"));
  }
  GHOSTDB_RETURN_NOT_OK(device_->WritePage(lpn, buffer_));
  pages_used_ += 1;
  fill_ = 0;
  return Status::OK();
}

Result<RunRef> RunWriter::Finish() {
  if (finished_) {
    return Status::Internal("RunWriter::Finish called twice");
  }
  finished_ = true;
  if (fill_ > 0) {
    GHOSTDB_RETURN_NOT_OK(FlushPage());
  }
  // Free unused tail pages of the last extent.
  uint32_t have = 0;
  for (auto& e : extents_) have += e.second;
  if (have > pages_used_) {
    uint32_t extra = have - pages_used_;
    auto& last = extents_.back();
    GHOSTDB_RETURN_NOT_OK(
        device::PageGuard::Adopt(allocator_, last.first + last.second - extra,
                                 extra, tag_)
            .Free());
    last.second -= extra;
    if (last.second == 0) extents_.pop_back();
  }
  RunRef ref;
  ref.bytes = bytes_;
  ref.extents = std::move(extents_);
  ref.tag = tag_;
  return ref;
}

RunReader::RunReader(flash::FlashDevice* device, RunRef ref, uint8_t* buffer,
                     uint32_t window_bytes)
    : device_(device),
      ref_(std::move(ref)),
      buffer_(buffer),
      page_size_(device->config().page_size),
      window_(window_bytes == 0 ? device->config().page_size : window_bytes) {
}

Status RunReader::EnsureWindow() {
  if (position_ >= window_start_ && position_ < window_end_) {
    return Status::OK();
  }
  uint64_t page = position_ / page_size_;
  uint32_t in_page = static_cast<uint32_t>(position_ % page_size_);
  // Window never crosses a page and never exceeds the run's live bytes.
  uint32_t len = std::min<uint32_t>(window_, page_size_ - in_page);
  uint64_t live_in_run = ref_.bytes - position_;
  if (len > live_in_run) len = static_cast<uint32_t>(live_in_run);
  GHOSTDB_RETURN_NOT_OK(device_->ReadPage(
      ref_.PageAt(static_cast<uint32_t>(page)), buffer_, in_page, len));
  window_start_ = position_;
  window_end_ = position_ + len;
  return Status::OK();
}

Result<size_t> RunReader::Read(uint8_t* dst, size_t len) {
  size_t produced = 0;
  while (produced < len && position_ < ref_.bytes) {
    GHOSTDB_RETURN_NOT_OK(EnsureWindow());
    size_t take = std::min<size_t>(
        {len - produced, static_cast<size_t>(window_end_ - position_)});
    std::memcpy(dst + produced, buffer_ + (position_ - window_start_), take);
    produced += take;
    position_ += take;
  }
  return produced;
}

Status RunReader::Skip(uint64_t bytes) {
  position_ = std::min<uint64_t>(position_ + bytes, ref_.bytes);
  return Status::OK();
}

Status IdRunReader::Prime() { return Advance(); }

Status IdRunReader::Advance() {
  uint8_t enc[4];
  GHOSTDB_ASSIGN_OR_RETURN(size_t n, reader_.Read(enc, 4));
  if (n == 4) {
    head_ = DecodeFixed32(enc);
    has_head_ = true;
  } else {
    has_head_ = false;
  }
  return Status::OK();
}

Status FreeRun(PageAllocator* allocator, const RunRef& ref,
               const std::string& fallback_tag) {
  const std::string& tag = ref.tag.empty() ? fallback_tag : ref.tag;
  for (const auto& e : ref.extents) {
    GHOSTDB_RETURN_NOT_OK(
        device::PageGuard::Adopt(allocator, e.first, e.second, tag).Free());
  }
  return Status::OK();
}

}  // namespace ghostdb::storage

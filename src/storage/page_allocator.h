// Logical page allocation over the flash device's flat page space.
// Structures (SKTs, climbing indexes, hidden images, temporary runs) each
// own page ranges; released ranges are recycled and trimmed so the FTL can
// garbage-collect them. Per-tag accounting feeds the Fig 7 storage report.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/annotations.h"
#include "flash/flash.h"

namespace ghostdb::storage {

/// \brief First-fit allocator of contiguous logical page ranges.
class PageAllocator {
 public:
  explicit PageAllocator(flash::FlashDevice* device)
      : device_(device), limit_(device->config().logical_pages) {}

  /// Allocates `count` contiguous pages; `tag` labels usage for accounting.
  /// Transcript sink: page counts show in the storage report and FTL trim
  /// stream, so hidden-derived extents are a leak. Call through PageGuard
  /// (device/guards.h) — leakcheck's paired-resource rule enforces it.
  GHOSTDB_TRANSCRIPT_SINK Result<uint32_t> Alloc(uint32_t count,
                                                 const std::string& tag);

  /// Returns a range; the pages are trimmed on the device. Same sink and
  /// guard discipline as Alloc.
  GHOSTDB_TRANSCRIPT_SINK Status Free(uint32_t first, uint32_t count,
                                      const std::string& tag);

  uint32_t used_pages() const { return used_pages_; }
  uint32_t high_water_pages() const { return high_water_; }
  uint32_t capacity_pages() const { return limit_; }

  /// Live page count per tag (for storage reports).
  const std::map<std::string, int64_t>& usage_by_tag() const {
    return usage_by_tag_;
  }

 private:
  flash::FlashDevice* device_;
  uint32_t limit_;
  uint32_t next_ = 0;  // bump pointer; freed ranges go to the free list
  std::vector<std::pair<uint32_t, uint32_t>> free_list_;  // (first, count)
  uint32_t used_pages_ = 0;
  uint32_t high_water_ = 0;
  std::map<std::string, int64_t> usage_by_tag_;
};

}  // namespace ghostdb::storage

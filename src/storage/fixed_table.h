// Fixed-width row tables on flash, addressed by dense RowId.
//
// Two uses, both from the paper:
//  * Subtree Key Tables (section 3.2): one row per tuple of a non-leaf
//    table, holding the ids of the joined tuples in every descendant table;
//    the owning id is implicit in the row position (kept sorted on it), so
//    it needs no storage — exactly the paper's trick.
//  * Hidden table images T_iH (section 4): the hidden columns of each
//    table, sorted by id, read at projection time.
//
// Rows never straddle pages (rows_per_page = page_size / row_width), which
// keeps random access to one page read.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/status.h"
#include "flash/flash.h"
#include "storage/page_allocator.h"
#include "storage/run.h"

namespace ghostdb::storage {

/// A finished fixed-width table.
struct FixedTableRef {
  RunRef run;                 ///< Page extents.
  uint32_t row_width = 0;     ///< Bytes per row.
  uint32_t rows_per_page = 0;
  uint64_t row_count = 0;

  uint32_t PageOfRow(catalog::RowId row) const {
    return run.PageAt(row / rows_per_page);
  }
};

/// \brief Builds a fixed-width table by appending rows in id order.
class FixedTableBuilder {
 public:
  /// `buffer` is one flash page owned by the caller (host scratch at load
  /// time).
  FixedTableBuilder(flash::FlashDevice* device, PageAllocator* allocator,
                    uint8_t* buffer, uint32_t row_width, std::string tag);

  /// Appends the next row (row id = number of rows appended so far).
  Status AppendRow(const uint8_t* row);

  Result<FixedTableRef> Finish();

 private:
  flash::FlashDevice* device_;
  PageAllocator* allocator_;
  uint8_t* buffer_;
  uint32_t row_width_;
  std::string tag_;
  uint32_t page_size_;
  uint32_t rows_per_page_;
  uint32_t rows_in_page_ = 0;
  uint64_t row_count_ = 0;
  std::vector<std::pair<uint32_t, uint32_t>> extents_;
  uint32_t pages_used_ = 0;
  bool finished_ = false;

  Status FlushPage();
};

/// \brief Random/sequential row reader with a single cached page buffer.
///
/// Ascending access (the common case: inputs sorted on id) reads each
/// touched page exactly once and skips pages with no requested rows — the
/// paper's SJoin access pattern.
class FixedTableReader {
 public:
  /// `buffer` is one device RAM buffer.
  FixedTableReader(flash::FlashDevice* device, const FixedTableRef& ref,
                   uint8_t* buffer);

  /// Reads row `row` into `dst` (row_width bytes).
  Status ReadRow(catalog::RowId row, uint8_t* dst);

  /// A window of contiguous rows inside the cached page, starting at the
  /// requested row. Valid until the next ReadRow/RowSpan call.
  struct Span {
    const uint8_t* data = nullptr;  ///< first requested row's bytes
    uint32_t rows = 0;              ///< contiguous rows available from it
  };

  /// Loads (if needed) the page holding `row` and exposes it as a span, so
  /// sequential scans can run SIMD kernels over whole pages instead of
  /// copying row by row. Touches pages in exactly the order a row-by-row
  /// ascending scan would.
  Result<Span> RowSpan(catalog::RowId row);

  /// Number of distinct pages loaded so far.
  uint64_t pages_touched() const { return pages_touched_; }

 private:
  flash::FlashDevice* device_;
  FixedTableRef ref_;
  uint8_t* buffer_;
  int64_t buffered_page_ = -1;
  uint64_t pages_touched_ = 0;
};

}  // namespace ghostdb::storage

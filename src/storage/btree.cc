#include "storage/btree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/coding.h"

namespace ghostdb::storage {

namespace {

constexpr uint32_t kPageHeaderBytes = 4;  // u16 entry count + 2 reserved

// Type-aware comparison of encoded keys (see catalog::CompareEncoded).
int CompareEncodedKeys(catalog::DataType type, uint32_t width,
                       const uint8_t* a, const uint8_t* b) {
  return catalog::CompareEncoded(type, width, a, b);
}

}  // namespace

uint64_t BTreeRef::total_pages() const {
  uint64_t pages = leaf_run.page_count();
  for (const auto& r : node_runs) pages += r.page_count();
  for (const auto& r : postings) pages += r.page_count();
  return pages;
}

BTreeBuilder::BTreeBuilder(flash::FlashDevice* device,
                           PageAllocator* allocator,
                           catalog::DataType key_type, uint32_t key_width,
                           uint32_t levels, std::string tag)
    : device_(device),
      allocator_(allocator),
      key_type_(key_type),
      key_width_(key_width),
      levels_(levels),
      tag_(std::move(tag)),
      page_size_(device->config().page_size),
      leaf_stride_(key_width + levels * 8),
      leaf_capacity_((page_size_ - kPageHeaderBytes) / leaf_stride_),
      scratch_(page_size_),
      leaf_buffer_(page_size_),
      leaf_page_(page_size_, 0),
      posting_cursor_(levels, 0),
      level_id_counts_(levels, 0),
      last_key_(key_width, 0) {
  for (uint32_t l = 0; l < levels_; ++l) {
    posting_buffers_.emplace_back(page_size_);
    posting_writers_.push_back(std::make_unique<RunWriter>(
        device_, allocator_, posting_buffers_.back().data(),
        tag_ + ".post" + std::to_string(l)));
  }
  leaf_writer_ = std::make_unique<RunWriter>(device_, allocator_,
                                             leaf_buffer_.data(),
                                             tag_ + ".leaf");
}

BTreeBuilder::~BTreeBuilder() = default;

Status BTreeBuilder::Add(
    const catalog::Value& key,
    const std::vector<std::vector<catalog::RowId>>& level_ids) {
  if (level_ids.size() != levels_) {
    return Status::InvalidArgument("climbing index expects " +
                                   std::to_string(levels_) + " levels");
  }
  std::vector<uint8_t> encoded(key_width_);
  key.Encode(encoded.data(), key_width_);
  if (has_last_key_ &&
      CompareEncodedKeys(key_type_, key_width_, encoded.data(),
                         last_key_.data()) <= 0) {
    return Status::InvalidArgument(
        "bulk build requires strictly ascending keys");
  }
  last_key_ = encoded;
  has_last_key_ = true;

  // Serialize the leaf entry: key | per-level (start, count).
  uint8_t* slot =
      leaf_page_.data() + kPageHeaderBytes + leaf_fill_ * leaf_stride_;
  std::memcpy(slot, encoded.data(), key_width_);
  for (uint32_t l = 0; l < levels_; ++l) {
    const auto& ids = level_ids[l];
    EncodeFixed32(slot + key_width_ + l * 8, posting_cursor_[l]);
    EncodeFixed32(slot + key_width_ + l * 8 + 4,
                  static_cast<uint32_t>(ids.size()));
    for (catalog::RowId id : ids) {
      GHOSTDB_RETURN_NOT_OK(posting_writers_[l]->AppendU32(id));
    }
    posting_cursor_[l] += static_cast<uint32_t>(ids.size());
    level_id_counts_[l] += ids.size();
  }
  if (leaf_fill_ == 0) {
    separators_.push_back(encoded);
  }
  leaf_fill_ += 1;
  entry_count_ += 1;
  if (leaf_fill_ == leaf_capacity_) {
    GHOSTDB_RETURN_NOT_OK(FlushLeaf());
  }
  return Status::OK();
}

Status BTreeBuilder::FlushLeaf() {
  EncodeFixed16(leaf_page_.data(), static_cast<uint16_t>(leaf_fill_));
  GHOSTDB_RETURN_NOT_OK(leaf_writer_->Append(leaf_page_.data(), page_size_));
  std::fill(leaf_page_.begin(), leaf_page_.end(), 0);
  leaf_fill_ = 0;
  return Status::OK();
}

Result<BTreeRef> BTreeBuilder::Finish() {
  if (leaf_fill_ > 0) {
    GHOSTDB_RETURN_NOT_OK(FlushLeaf());
  }
  BTreeRef ref;
  ref.key_type = key_type_;
  ref.key_width = key_width_;
  ref.levels = levels_;
  ref.entry_count = entry_count_;
  ref.level_id_counts = level_id_counts_;
  GHOSTDB_ASSIGN_OR_RETURN(ref.leaf_run, leaf_writer_->Finish());
  for (uint32_t l = 0; l < levels_; ++l) {
    GHOSTDB_ASSIGN_OR_RETURN(RunRef area, posting_writers_[l]->Finish());
    ref.postings.push_back(std::move(area));
  }
  if (entry_count_ == 0) {
    ref.height = 0;
    return ref;
  }

  // Build internal levels bottom-up from the leaf separators.
  uint32_t node_stride = key_width_ + 4;
  uint32_t node_capacity = (page_size_ - kPageHeaderBytes) / node_stride;
  std::vector<std::vector<uint8_t>> child_keys = separators_;
  ref.height = 1;
  while (child_keys.size() > 1) {
    RunWriter writer(device_, allocator_, scratch_.data(),
                     tag_ + ".node" + std::to_string(ref.height));
    std::vector<std::vector<uint8_t>> next_keys;
    std::vector<uint8_t> page(page_size_, 0);
    uint32_t fill = 0;
    for (uint32_t child = 0; child < child_keys.size(); ++child) {
      if (fill == 0) next_keys.push_back(child_keys[child]);
      uint8_t* slot = page.data() + kPageHeaderBytes + fill * node_stride;
      std::memcpy(slot, child_keys[child].data(), key_width_);
      EncodeFixed32(slot + key_width_, child);
      fill += 1;
      if (fill == node_capacity || child + 1 == child_keys.size()) {
        EncodeFixed16(page.data(), static_cast<uint16_t>(fill));
        GHOSTDB_RETURN_NOT_OK(writer.Append(page.data(), page_size_));
        std::fill(page.begin(), page.end(), 0);
        fill = 0;
      }
    }
    GHOSTDB_ASSIGN_OR_RETURN(RunRef run, writer.Finish());
    ref.node_runs.push_back(std::move(run));
    child_keys = std::move(next_keys);
    ref.height += 1;
  }
  ref.root_page = 0;  // run-relative index of the single top-level page
  return ref;
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

BTreeReader::BTreeReader(flash::FlashDevice* device, const BTreeRef* ref)
    : device_(device), ref_(ref) {}

Result<std::unique_ptr<BTreeReader>> BTreeReader::Open(
    flash::FlashDevice* device, device::RamManager* ram, const BTreeRef* ref) {
  auto reader = std::unique_ptr<BTreeReader>(new BTreeReader(device, ref));
  uint32_t buffers = std::max<uint32_t>(ref->height, 1);
  GHOSTDB_ASSIGN_OR_RETURN(reader->buffers_,
                           device::RamGuard::Acquire(ram, buffers, "btree-path"));
  reader->loaded_page_.assign(buffers, -1);
  return reader;
}

Status BTreeReader::LoadLevelPage(uint32_t level, uint32_t run_page_index) {
  if (loaded_page_[level] == static_cast<int64_t>(run_page_index)) {
    return Status::OK();
  }
  const RunRef& run =
      level == 0 ? ref_->leaf_run : ref_->node_runs[level - 1];
  uint8_t* buf = buffers_.data() + level * device_->config().page_size;
  GHOSTDB_RETURN_NOT_OK(
      device_->ReadFullPage(run.PageAt(run_page_index), buf));
  loaded_page_[level] = run_page_index;
  pages_loaded_ += 1;
  return Status::OK();
}

int BTreeReader::CompareKeyAt(const uint8_t* entry_key,
                              const uint8_t* needle) const {
  return CompareEncodedKeys(ref_->key_type, ref_->key_width, entry_key,
                            needle);
}

Result<uint32_t> BTreeReader::DescendToLeaf(const uint8_t* encoded_key) {
  uint32_t page_index = ref_->root_page;
  uint32_t node_stride = ref_->key_width + 4;
  for (uint32_t level = ref_->height - 1; level >= 1; --level) {
    GHOSTDB_RETURN_NOT_OK(LoadLevelPage(level, page_index));
    const uint8_t* page =
        buffers_.data() + level * device_->config().page_size;
    uint16_t count = DecodeFixed16(page);
    // Rightmost child whose separator <= needle (else leftmost child).
    uint32_t lo = 0, hi = count;  // first entry with key > needle
    while (lo < hi) {
      uint32_t mid = (lo + hi) / 2;
      const uint8_t* k = page + kPageHeaderBytes + mid * node_stride;
      if (CompareKeyAt(k, encoded_key) <= 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    uint32_t pick = lo > 0 ? lo - 1 : 0;
    const uint8_t* slot = page + kPageHeaderBytes + pick * node_stride;
    page_index = DecodeFixed32(slot + ref_->key_width);
  }
  return page_index;
}

Result<bool> BTreeReader::SeekLowerBound(const catalog::Value& key) {
  cursor_valid_ = false;
  if (ref_->entry_count == 0) return false;
  std::vector<uint8_t> encoded(ref_->key_width);
  key.Encode(encoded.data(), ref_->key_width);
  GHOSTDB_ASSIGN_OR_RETURN(uint32_t leaf, DescendToLeaf(encoded.data()));
  GHOSTDB_RETURN_NOT_OK(LoadLevelPage(0, leaf));
  const uint8_t* page = buffers_.data();
  uint16_t count = DecodeFixed16(page);
  uint32_t stride = ref_->key_width + ref_->levels * 8;
  uint32_t lo = 0, hi = count;  // first entry with key >= needle
  while (lo < hi) {
    uint32_t mid = (lo + hi) / 2;
    const uint8_t* k = page + kPageHeaderBytes + mid * stride;
    if (CompareKeyAt(k, encoded.data()) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == count) {
    // Past the last key of this leaf: the answer is the next leaf's first
    // entry, if any.
    if (leaf + 1 >= ref_->leaf_run.page_count()) return false;
    leaf += 1;
    GHOSTDB_RETURN_NOT_OK(LoadLevelPage(0, leaf));
    lo = 0;
  }
  cursor_valid_ = true;
  cursor_leaf_ = leaf;
  cursor_slot_ = lo;
  return true;
}

Result<bool> BTreeReader::SeekToFirst() {
  cursor_valid_ = false;
  if (ref_->entry_count == 0) return false;
  GHOSTDB_RETURN_NOT_OK(LoadLevelPage(0, 0));
  cursor_valid_ = true;
  cursor_leaf_ = 0;
  cursor_slot_ = 0;
  return true;
}

Result<BTreeEntry> BTreeReader::Current() {
  if (!cursor_valid_) return Status::Internal("btree cursor invalid");
  GHOSTDB_RETURN_NOT_OK(LoadLevelPage(0, cursor_leaf_));
  const uint8_t* page = buffers_.data();
  uint32_t stride = ref_->key_width + ref_->levels * 8;
  const uint8_t* slot = page + kPageHeaderBytes + cursor_slot_ * stride;
  BTreeEntry entry;
  entry.key =
      catalog::Value::Decode(slot, ref_->key_type, ref_->key_width);
  entry.ranges.resize(ref_->levels);
  for (uint32_t l = 0; l < ref_->levels; ++l) {
    entry.ranges[l].start = DecodeFixed32(slot + ref_->key_width + l * 8);
    entry.ranges[l].count =
        DecodeFixed32(slot + ref_->key_width + l * 8 + 4);
  }
  return entry;
}

Result<bool> BTreeReader::Next() {
  if (!cursor_valid_) return false;
  GHOSTDB_RETURN_NOT_OK(LoadLevelPage(0, cursor_leaf_));
  uint16_t count = DecodeFixed16(buffers_.data());
  if (cursor_slot_ + 1 < count) {
    cursor_slot_ += 1;
    return true;
  }
  if (cursor_leaf_ + 1 >= ref_->leaf_run.page_count()) {
    cursor_valid_ = false;
    return false;
  }
  cursor_leaf_ += 1;
  cursor_slot_ = 0;
  GHOSTDB_RETURN_NOT_OK(LoadLevelPage(0, cursor_leaf_));
  return true;
}

// ---------------------------------------------------------------------------
// PostingCursor
// ---------------------------------------------------------------------------

PostingCursor::PostingCursor(flash::FlashDevice* device, const RunRef* area,
                             PostingRange range, uint8_t* buffer,
                             uint32_t window_bytes)
    : device_(device),
      area_(area),
      buffer_(buffer),
      page_size_(device->config().page_size),
      window_(window_bytes == 0 ? device->config().page_size : window_bytes),
      next_elem_(range.start),
      remaining_(range.count) {}

Status PostingCursor::Prime() { return Advance(); }

Status PostingCursor::Advance() {
  if (remaining_ == 0) {
    has_head_ = false;
    return Status::OK();
  }
  uint32_t ids_per_page = page_size_ / 4;
  bool in_window = window_elems_ > 0 && next_elem_ >= window_first_elem_ &&
                   next_elem_ < window_first_elem_ + window_elems_;
  if (!in_window) {
    // Load a fresh window: clipped to the page, the range, and the window
    // capacity; only those bytes are transferred (partial page read).
    uint32_t first_in_page = next_elem_ % ids_per_page;
    uint32_t elems = std::min(
        {remaining_, ids_per_page - first_in_page, window_ / 4});
    GHOSTDB_RETURN_NOT_OK(
        device_->ReadPage(area_->PageAt(next_elem_ / ids_per_page), buffer_,
                          first_in_page * 4, elems * 4));
    window_first_elem_ = next_elem_;
    window_elems_ = elems;
  }
  head_ = DecodeFixed32(buffer_ + (next_elem_ - window_first_elem_) * 4);
  has_head_ = true;
  next_elem_ += 1;
  remaining_ -= 1;
  return Status::OK();
}

}  // namespace ghostdb::storage

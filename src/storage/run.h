// Sequential byte runs on flash: the storage primitive behind postings
// areas, temporary merge runs, and materialized intermediate results.
//
// Writers and readers operate through an externally supplied page buffer:
// at query time that buffer comes from the device's RamManager, so the
// paper's "one buffer per (sub)list" RAM discipline is enforced by
// construction; at build time the database owner's host supplies scratch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/result.h"
#include "common/status.h"
#include "flash/flash.h"
#include "storage/page_allocator.h"

namespace ghostdb::storage {

/// A finished run: an ordered list of logical page extents holding `bytes`
/// bytes. Runs are usually one contiguous extent, but may fragment when the
/// free list is fragmented; page lookup stays O(#extents), which is small.
struct RunRef {
  std::vector<std::pair<uint32_t, uint32_t>> extents;  ///< (first, count)
  uint64_t bytes = 0;
  std::string tag;  ///< allocator accounting tag (set by the writer)

  bool empty() const { return bytes == 0; }
  uint32_t page_count() const {
    uint32_t n = 0;
    for (const auto& e : extents) n += e.second;
    return n;
  }
  /// Logical page number of the idx-th page of the run.
  uint32_t PageAt(uint32_t idx) const {
    for (const auto& e : extents) {
      if (idx < e.second) return e.first + idx;
      idx -= e.second;
    }
    return 0;  // callers never index past page_count()
  }
};

/// \brief Appends bytes to freshly allocated pages.
///
/// Abandoning a writer mid-run — an Append/Finish error, or simply going
/// out of scope without Finish() — reclaims every extent it still holds
/// (the destructor runs Abort()), so a torn run write cannot leak flash
/// pages. Finish() moves the extents into the returned RunRef, after which
/// the destructor is a no-op.
class RunWriter {
 public:
  /// `buffer` must hold one flash page and stays owned by the caller.
  RunWriter(flash::FlashDevice* device, PageAllocator* allocator,
            uint8_t* buffer, std::string tag);

  /// Frees any extents still held (best-effort; see Abort()).
  ~RunWriter();

  RunWriter(const RunWriter&) = delete;
  RunWriter& operator=(const RunWriter&) = delete;

  /// Appends raw bytes.
  Status Append(const uint8_t* data, size_t len);

  /// Appends one little-endian 32-bit value (ids).
  Status AppendU32(uint32_t v);

  /// Flushes the tail page and returns the run. The writer must not be
  /// reused afterwards.
  Result<RunRef> Finish();

  /// Releases every page extent allocated so far back to the allocator and
  /// resets the writer to empty. Safe to call at any point (idempotent);
  /// the abandoned-run cleanup path after a failed spill.
  Status Abort();

  uint64_t bytes_written() const { return bytes_; }

 private:
  Status FlushPage();

  flash::FlashDevice* device_;
  PageAllocator* allocator_;
  uint8_t* buffer_;
  std::string tag_;
  uint32_t page_size_;
  std::vector<std::pair<uint32_t, uint32_t>> extents_;  // (first, count)
  uint32_t pages_used_ = 0;
  uint32_t fill_ = 0;
  uint64_t bytes_ = 0;
  bool finished_ = false;
};

/// \brief Sequential reader over a RunRef.
class RunReader {
 public:
  /// `buffer` must hold `window_bytes` bytes (default: one flash page);
  /// reads are charged per page-load with the partial-transfer cost model.
  /// Smaller windows model the paper's sub-buffer Merge alternative: more
  /// page loads, fewer bytes transferred per load.
  RunReader(flash::FlashDevice* device, RunRef ref, uint8_t* buffer,
            uint32_t window_bytes = 0);

  /// Reads up to `len` bytes; returns the number actually read (0 at end).
  Result<size_t> Read(uint8_t* dst, size_t len);

  /// Skips forward; pages that are skipped entirely are never read.
  Status Skip(uint64_t bytes);

  uint64_t remaining() const { return ref_.bytes - position_; }
  bool exhausted() const { return position_ >= ref_.bytes; }

 private:
  Status EnsureWindow();

  flash::FlashDevice* device_;
  RunRef ref_;
  uint8_t* buffer_;
  uint32_t page_size_;
  uint32_t window_;
  uint64_t position_ = 0;
  uint64_t window_start_ = 0;  // absolute byte offset of the buffered window
  uint64_t window_end_ = 0;    // exclusive; 0 = nothing buffered
};

/// \brief Stream of 4-byte row ids over a run, with one-id lookahead —
/// the shape the Merge operator consumes.
class IdRunReader {
 public:
  IdRunReader(flash::FlashDevice* device, RunRef ref, uint8_t* buffer,
              uint32_t window_bytes = 0)
      : reader_(device, std::move(ref), buffer, window_bytes) {}

  /// True if an id is available via head().
  bool valid() const { return has_head_; }
  catalog::RowId head() const { return head_; }

  /// Loads the first id; must be called once before use.
  Status Prime();

  /// Advances to the next id (invalidates at end of run).
  Status Advance();

 private:
  RunReader reader_;
  catalog::RowId head_ = 0;
  bool has_head_ = false;
};

/// Releases a run's pages back to the allocator (trims flash). The run's
/// own tag is used for accounting; `fallback_tag` applies only to runs that
/// carry none.
Status FreeRun(PageAllocator* allocator, const RunRef& ref,
               const std::string& fallback_tag);

}  // namespace ghostdb::storage

#include "storage/page_allocator.h"

#include <algorithm>

#include "device/fault_injector.h"

namespace ghostdb::storage {

Result<uint32_t> PageAllocator::Alloc(uint32_t count, const std::string& tag) {
  if (count == 0) {
    return Status::InvalidArgument("cannot allocate zero pages");
  }
  if (device_->fault_injector() != nullptr) {
    GHOSTDB_RETURN_NOT_OK(device_->fault_injector()->CheckSite(
        device::FaultSite::kPageAlloc,
        "alloc of " + std::to_string(count) + " pages (tag " + tag + ")"));
  }
  // First fit in the free list.
  for (size_t i = 0; i < free_list_.size(); ++i) {
    if (free_list_[i].second >= count) {
      uint32_t first = free_list_[i].first;
      free_list_[i].first += count;
      free_list_[i].second -= count;
      if (free_list_[i].second == 0) {
        free_list_.erase(free_list_.begin() + static_cast<long>(i));
      }
      used_pages_ += count;
      high_water_ = std::max(high_water_, used_pages_);
      usage_by_tag_[tag] += count;
      return first;
    }
  }
  if (next_ + count > limit_) {
    return Status::ResourceExhausted(
        "flash space exhausted: want " + std::to_string(count) + " pages, " +
        std::to_string(limit_ - next_) + " fresh remain (tag " + tag + ")");
  }
  uint32_t first = next_;
  next_ += count;
  used_pages_ += count;
  high_water_ = std::max(high_water_, used_pages_);
  usage_by_tag_[tag] += count;
  return first;
}

Status PageAllocator::Free(uint32_t first, uint32_t count,
                           const std::string& tag) {
  if (count == 0) return Status::OK();
  for (uint32_t p = first; p < first + count; ++p) {
    GHOSTDB_RETURN_NOT_OK(device_->Trim(p));
  }
  free_list_.emplace_back(first, count);
  used_pages_ -= count;
  usage_by_tag_[tag] -= count;
  return Status::OK();
}

}  // namespace ghostdb::storage
